//! Metric / pruning-rule selection for the engine.
//!
//! The core searcher is generic over `(DecomposableMetric, PruningRule)`
//! pairs; a serving engine needs a *value-level* description of that choice
//! so it can be carried in a builder, logged, and instantiated fresh for
//! every worker (rules hold per-attempt state and are not shared across
//! threads). [`RuleKind`] enumerates the four unweighted combinations the
//! paper evaluates plus the weighted variants of Section 8.1 / Appendix A
//! (weighted histogram intersection with the WHq bound, weighted squared
//! Euclidean with the safe WEv bound), so weighted and subspace queries run
//! through the same partitioned engine as the unweighted ones.

use bond::BondError;
use bond_metrics::{
    DecomposableMetric, EqRule, EvRule, HhRule, HistogramIntersection, HqRule, Objective,
    PruningRule, SquaredEuclidean, WeightedEvRule, WeightedHistogramIntersection, WeightedHqRule,
    WeightedSquaredEuclidean,
};

/// Which metric + pruning criterion a search uses.
///
/// The weighted variants carry their per-dimension weights by value, which
/// is what lets one engine serve e.g. a subspace query configuration
/// (weights 0/1) without threading a second side channel through the
/// scheduler. Construct them through [`RuleKind::weighted_histogram`] /
/// [`RuleKind::weighted_euclidean`] so the weights are validated once.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Histogram intersection with the query-only criterion Hq.
    HistogramHq,
    /// Histogram intersection with the per-vector criterion Hh.
    HistogramHh,
    /// Squared Euclidean distance with the query-only criterion Eq.
    EuclideanEq,
    /// Squared Euclidean distance with the per-vector criterion Ev.
    EuclideanEv,
    /// Weighted histogram intersection with the weighted query-only bound.
    WeightedHistogram(
        /// Per-dimension weights (finite, non-negative).
        Vec<f64>,
    ),
    /// Weighted squared Euclidean distance with the safe weighted per-vector
    /// bound.
    WeightedEuclidean(
        /// Per-dimension weights (finite, non-negative).
        Vec<f64>,
    ),
}

impl RuleKind {
    /// The unweighted rule kinds, in the paper's order.
    pub const ALL: [RuleKind; 4] = [
        RuleKind::HistogramHq,
        RuleKind::HistogramHh,
        RuleKind::EuclideanEq,
        RuleKind::EuclideanEv,
    ];

    /// A validated weighted-histogram-intersection rule.
    pub fn weighted_histogram(weights: Vec<f64>) -> Result<Self, BondError> {
        WeightedHistogramIntersection::new(weights.clone()).map_err(BondError::InvalidParams)?;
        Ok(RuleKind::WeightedHistogram(weights))
    }

    /// A validated weighted-squared-Euclidean rule.
    pub fn weighted_euclidean(weights: Vec<f64>) -> Result<Self, BondError> {
        WeightedSquaredEuclidean::new(weights.clone()).map_err(BondError::InvalidParams)?;
        Ok(RuleKind::WeightedEuclidean(weights))
    }

    /// Checks that carried weights are usable for a `dims`-dimensional
    /// table. Variants can be constructed directly (bypassing the
    /// validating constructors), so the engine re-checks here at the start
    /// of every `execute` and surfaces a proper error instead of panicking
    /// mid-search. Value validity is delegated to the metric constructors —
    /// the single source of the "finite and non-negative" rule.
    pub fn validate(&self, dims: usize) -> Result<(), BondError> {
        if let Some(w) = self.weights() {
            if w.len() != dims {
                return Err(BondError::InvalidParams(format!(
                    "rule has {} weights, table has {dims} dimensions",
                    w.len()
                )));
            }
        }
        match self {
            RuleKind::WeightedHistogram(w) => WeightedHistogramIntersection::new(w.clone())
                .map(|_| ())
                .map_err(BondError::InvalidParams),
            RuleKind::WeightedEuclidean(w) => WeightedSquaredEuclidean::new(w.clone())
                .map(|_| ())
                .map_err(BondError::InvalidParams),
            _ => Ok(()),
        }
    }

    /// The metric this rule prunes for. Weighted kinds construct their
    /// metric from the carried weights (call [`RuleKind::validate`] first —
    /// weights that would not have passed the validating constructors panic
    /// here).
    pub fn make_metric(&self) -> Box<dyn DecomposableMetric> {
        match self {
            RuleKind::HistogramHq | RuleKind::HistogramHh => Box::new(HistogramIntersection),
            RuleKind::EuclideanEq | RuleKind::EuclideanEv => Box::new(SquaredEuclidean),
            RuleKind::WeightedHistogram(w) => Box::new(
                WeightedHistogramIntersection::new(w.clone()).expect("weights pre-validated"),
            ),
            RuleKind::WeightedEuclidean(w) => {
                Box::new(WeightedSquaredEuclidean::new(w.clone()).expect("weights pre-validated"))
            }
        }
    }

    /// Whether the metric maximizes (similarity) or minimizes (distance).
    pub fn objective(&self) -> Objective {
        match self {
            RuleKind::HistogramHq | RuleKind::HistogramHh | RuleKind::WeightedHistogram(_) => {
                Objective::Maximize
            }
            RuleKind::EuclideanEq | RuleKind::EuclideanEv | RuleKind::WeightedEuclidean(_) => {
                Objective::Minimize
            }
        }
    }

    /// A fresh pruning-rule instance (each worker needs its own: rules hold
    /// per-pruning-attempt state).
    pub fn make_rule(&self) -> Box<dyn PruningRule> {
        match self {
            RuleKind::HistogramHq => Box::new(HqRule::new()),
            RuleKind::HistogramHh => Box::new(HhRule::new()),
            RuleKind::EuclideanEq => Box::new(EqRule::new()),
            RuleKind::EuclideanEv => Box::new(EvRule::new()),
            RuleKind::WeightedHistogram(w) => Box::new(WeightedHqRule::new(w.clone())),
            RuleKind::WeightedEuclidean(w) => Box::new(WeightedEvRule::new(w.clone())),
        }
    }

    /// Whether the rule needs the per-row total masses `T(x)` (the engine
    /// materialises them once per table instead of once per search).
    pub fn needs_total_mass(&self) -> bool {
        matches!(
            self,
            RuleKind::HistogramHh | RuleKind::EuclideanEv | RuleKind::WeightedEuclidean(_)
        )
    }

    /// The metric weights, when this is a weighted kind. Feeds the weighted
    /// dimension orderings and the searcher's `weights` parameter.
    pub fn weights(&self) -> Option<&[f64]> {
        match self {
            RuleKind::WeightedHistogram(w) | RuleKind::WeightedEuclidean(w) => Some(w),
            _ => None,
        }
    }

    /// The paper's short name for the combination.
    pub fn name(&self) -> &'static str {
        match self {
            RuleKind::HistogramHq => "Hq",
            RuleKind::HistogramHh => "Hh",
            RuleKind::EuclideanEq => "Eq",
            RuleKind::EuclideanEv => "Ev",
            RuleKind::WeightedHistogram(_) => "WHq",
            RuleKind::WeightedEuclidean(_) => "WEv",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<RuleKind> {
        let mut kinds: Vec<RuleKind> = RuleKind::ALL.to_vec();
        kinds.push(RuleKind::weighted_histogram(vec![1.0, 2.0]).unwrap());
        kinds.push(RuleKind::weighted_euclidean(vec![0.5, 0.0]).unwrap());
        kinds
    }

    #[test]
    fn metric_and_rule_objectives_agree() {
        for kind in all_kinds() {
            assert_eq!(kind.objective(), kind.make_rule().objective(), "{}", kind.name());
            assert_eq!(kind.objective(), kind.make_metric().objective(), "{}", kind.name());
        }
    }

    #[test]
    fn needs_total_mass_matches_the_rules_own_declaration() {
        for kind in all_kinds() {
            assert_eq!(
                kind.needs_total_mass(),
                kind.make_rule().requirements().needs_total_mass,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn per_vector_rules_need_total_mass() {
        // Hh, Ev and WEv track the scanned/remaining mass of each vector;
        // the query-only rules need no per-vector bookkeeping.
        assert!(RuleKind::HistogramHh.needs_total_mass());
        assert!(RuleKind::EuclideanEv.needs_total_mass());
        assert!(RuleKind::WeightedEuclidean(vec![1.0]).needs_total_mass());
        assert!(!RuleKind::HistogramHq.needs_total_mass());
        assert!(!RuleKind::EuclideanEq.needs_total_mass());
        assert!(!RuleKind::WeightedHistogram(vec![1.0]).needs_total_mass());
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = all_kinds().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["Hq", "Hh", "Eq", "Ev", "WHq", "WEv"]);
    }

    #[test]
    fn validate_catches_directly_constructed_invalid_weights() {
        assert!(RuleKind::WeightedEuclidean(vec![-1.0, 1.0]).validate(2).is_err());
        assert!(RuleKind::WeightedHistogram(vec![f64::NAN, 1.0]).validate(2).is_err());
        assert!(RuleKind::WeightedEuclidean(vec![1.0]).validate(2).is_err(), "dims mismatch");
        assert!(RuleKind::WeightedEuclidean(vec![1.0, 0.0]).validate(2).is_ok());
        assert!(RuleKind::HistogramHq.validate(99).is_ok(), "unweighted kinds have no weights");
    }

    #[test]
    fn weighted_constructors_validate() {
        assert!(RuleKind::weighted_euclidean(vec![]).is_err());
        assert!(RuleKind::weighted_euclidean(vec![-1.0]).is_err());
        assert!(RuleKind::weighted_histogram(vec![f64::NAN]).is_err());
        let kind = RuleKind::weighted_euclidean(vec![1.0, 3.0]).unwrap();
        assert_eq!(kind.weights(), Some(&[1.0, 3.0][..]));
        assert_eq!(RuleKind::HistogramHq.weights(), None);
    }
}
