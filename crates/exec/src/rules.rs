//! Metric / pruning-rule selection for the engine.
//!
//! The core searcher is generic over `(DecomposableMetric, PruningRule)`
//! pairs; a serving engine needs a *value-level* description of that choice
//! so it can be carried in a builder, logged, and instantiated fresh for
//! every worker (rules hold per-attempt state and are not shared across
//! threads). [`RuleKind`] enumerates the four unweighted combinations the
//! paper evaluates.

use bond_metrics::{
    DecomposableMetric, EqRule, EvRule, HhRule, HistogramIntersection, HqRule, Objective,
    PruningRule, SquaredEuclidean,
};

/// Which metric + pruning criterion a search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// Histogram intersection with the query-only criterion Hq.
    HistogramHq,
    /// Histogram intersection with the per-vector criterion Hh.
    HistogramHh,
    /// Squared Euclidean distance with the query-only criterion Eq.
    EuclideanEq,
    /// Squared Euclidean distance with the per-vector criterion Ev.
    EuclideanEv,
}

impl RuleKind {
    /// All rule kinds, in the paper's order.
    pub const ALL: [RuleKind; 4] = [
        RuleKind::HistogramHq,
        RuleKind::HistogramHh,
        RuleKind::EuclideanEq,
        RuleKind::EuclideanEv,
    ];

    /// The metric this rule prunes for.
    pub fn metric(self) -> &'static dyn DecomposableMetric {
        match self {
            RuleKind::HistogramHq | RuleKind::HistogramHh => &HistogramIntersection,
            RuleKind::EuclideanEq | RuleKind::EuclideanEv => &SquaredEuclidean,
        }
    }

    /// Whether the metric maximizes (similarity) or minimizes (distance).
    pub fn objective(self) -> Objective {
        self.metric().objective()
    }

    /// A fresh pruning-rule instance (each worker needs its own: rules hold
    /// per-pruning-attempt state).
    pub fn make_rule(self) -> Box<dyn PruningRule> {
        match self {
            RuleKind::HistogramHq => Box::new(HqRule::new()),
            RuleKind::HistogramHh => Box::new(HhRule::new()),
            RuleKind::EuclideanEq => Box::new(EqRule::new()),
            RuleKind::EuclideanEv => Box::new(EvRule::new()),
        }
    }

    /// Whether the rule needs the per-row total masses `T(x)` (the engine
    /// materialises them once per table instead of once per search).
    pub fn needs_total_mass(self) -> bool {
        matches!(self, RuleKind::HistogramHh | RuleKind::EuclideanEv)
    }

    /// The paper's short name for the combination.
    pub fn name(self) -> &'static str {
        match self {
            RuleKind::HistogramHq => "Hq",
            RuleKind::HistogramHh => "Hh",
            RuleKind::EuclideanEq => "Eq",
            RuleKind::EuclideanEv => "Ev",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_and_rule_objectives_agree() {
        for kind in RuleKind::ALL {
            assert_eq!(kind.objective(), kind.make_rule().objective(), "{}", kind.name());
        }
    }

    #[test]
    fn needs_total_mass_matches_the_rules_own_declaration() {
        for kind in RuleKind::ALL {
            assert_eq!(
                kind.needs_total_mass(),
                kind.make_rule().requirements().needs_total_mass,
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn per_vector_rules_need_total_mass() {
        // Hh and Ev track the scanned/remaining mass of each vector; the
        // query-only rules need no per-vector bookkeeping.
        assert!(RuleKind::HistogramHh.needs_total_mass());
        assert!(RuleKind::EuclideanEv.needs_total_mass());
        assert!(!RuleKind::HistogramHq.needs_total_mass());
        assert!(!RuleKind::EuclideanEq.needs_total_mass());
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = RuleKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["Hq", "Hh", "Eq", "Ev"]);
    }
}
