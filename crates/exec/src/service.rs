//! A thin, thread-safe serving front-end over an owned [`Engine`].
//!
//! The engine's `queries × segments` scheduler is batch-shaped: it
//! amortizes per-query setup and keeps the worker pool saturated when
//! handed many requests at once. A real service, however, receives
//! requests one at a time from concurrent clients. [`Server`] is the seam
//! between the two: callers [`Server::submit`] individual [`QuerySpec`]s
//! from any thread, a background worker drains the submission queue and
//! *coalesces* whatever has accumulated — up to
//! [`ServerBuilder::max_batch`] requests — into one [`RequestBatch`] per
//! engine pass, and each answer is routed back to the submitter through
//! the [`Ticket`] it received at admission.
//!
//! Admission control happens at the door: [`Server::submit`] validates the
//! spec against the engine ([`Engine::validate`]) and rejects invalid
//! requests immediately, so one bad request can never poison a coalesced
//! batch. This is deliberately a *synchronous* queue + condvar design —
//! no async runtime exists in this dependency-free workspace — but the
//! seam is the one the ROADMAP's async service layer calls for: requests
//! form batches, batches form engine passes, and the queue is the place
//! where admission policy (prioritising cheap, skippable work) can grow.
//!
//! ```
//! use bond_exec::service::Server;
//! use bond_exec::{Engine, QuerySpec, RuleKind};
//! use vdstore::DecomposedTable;
//!
//! let vectors: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![i as f64 / 100.0, 1.0 - i as f64 / 100.0])
//!     .collect();
//! let table = DecomposedTable::from_vectors("demo", &vectors).unwrap();
//! let engine = Engine::builder(table).partitions(4).threads(2).build().unwrap();
//!
//! let server = Server::new(engine);
//! let ticket = server.submit(QuerySpec::new(vec![0.25, 0.75], 3)).unwrap();
//! let answer = ticket.wait().unwrap();
//! assert_eq!(answer.hits.len(), 3);
//! ```

use crate::batch::{QueryOutcome, QuerySpec, RequestBatch};
use crate::engine::Engine;
use bond::{BondError, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One queued request: the spec plus the channel its answer travels back on.
type Pending = (QuerySpec, mpsc::Sender<Result<QueryOutcome>>);

/// The queue shared between submitters and the worker.
#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    wake: Condvar,
    /// Engine passes executed so far (each serving one coalesced batch).
    batches: AtomicUsize,
    /// Requests answered so far (success or error).
    served: AtomicUsize,
}

#[derive(Debug)]
struct QueueState {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

/// Builds a [`Server`] over an engine.
#[derive(Debug)]
pub struct ServerBuilder {
    engine: Engine,
    max_batch: usize,
}

impl ServerBuilder {
    /// Upper bound on how many queued requests one engine pass coalesces
    /// (default 64). Larger batches amortize setup further; smaller ones
    /// bound per-request latency. `0` is rejected at
    /// [`ServerBuilder::build`].
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Finishes the build and starts the worker thread.
    ///
    /// # Errors
    ///
    /// [`BondError::InvalidParams`] when `max_batch` is zero.
    pub fn build(self) -> Result<Server> {
        if self.max_batch == 0 {
            return Err(BondError::InvalidParams("max_batch must be non-zero".into()));
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { pending: VecDeque::new(), shutdown: false }),
            wake: Condvar::new(),
            batches: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
        });
        let worker = {
            let engine = self.engine.clone();
            let shared = Arc::clone(&shared);
            let max_batch = self.max_batch;
            std::thread::spawn(move || worker_loop(&engine, &shared, max_batch))
        };
        Ok(Server { engine: self.engine, shared, worker: Some(worker) })
    }
}

/// A long-lived, thread-safe k-NN server: an `Arc`'d [`Engine`] plus a
/// submission queue whose worker coalesces concurrent requests into engine
/// batches.
///
/// `Server` is `Send + Sync`; submit from as many threads as you like.
/// Dropping the server shuts the worker down after it drains the queue
/// (every accepted ticket is answered).
#[derive(Debug)]
pub struct Server {
    engine: Engine,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

/// A claim on one submitted request's answer.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryOutcome>>,
}

impl Ticket {
    /// Blocks until the answer arrives.
    ///
    /// # Errors
    ///
    /// Whatever the engine reported for the coalesced batch, or
    /// [`BondError::ServiceUnavailable`] when the server's worker died
    /// before answering.
    pub fn wait(self) -> Result<QueryOutcome> {
        self.rx.recv().map_err(|_| BondError::ServiceUnavailable("server worker exited".into()))?
    }
}

impl Server {
    /// A server over `engine` with default settings.
    pub fn new(engine: Engine) -> Server {
        Server::builder(engine).build().expect("default server configuration is valid")
    }

    /// Starts building a server over `engine`.
    pub fn builder(engine: Engine) -> ServerBuilder {
        ServerBuilder { engine, max_batch: 64 }
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Submits one request and returns the [`Ticket`] its answer arrives
    /// on. Validation happens here, at admission: an invalid spec is
    /// rejected immediately (and never reaches a batch), so every accepted
    /// ticket eventually resolves.
    ///
    /// # Errors
    ///
    /// [`Engine::validate`]'s errors for an invalid spec, or
    /// [`BondError::ServiceUnavailable`] after [`Server::shutdown`].
    pub fn submit(&self, spec: QuerySpec) -> Result<Ticket> {
        self.engine.validate(&spec)?;
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("queue mutex never poisoned");
            if state.shutdown {
                return Err(BondError::ServiceUnavailable("server is shut down".into()));
            }
            state.pending.push_back((spec, tx));
        }
        self.shared.wake.notify_one();
        Ok(Ticket { rx })
    }

    /// Number of engine passes executed so far. Together with
    /// [`Server::queries_served`] this exposes the coalescing ratio:
    /// `queries_served / batches_executed` requests were answered per
    /// engine pass on average.
    pub fn batches_executed(&self) -> usize {
        self.shared.batches.load(Ordering::Relaxed)
    }

    /// Number of requests answered so far (successfully or with an error).
    pub fn queries_served(&self) -> usize {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Stops accepting new requests and wakes the worker so it drains what
    /// is already queued and exits. Called automatically on drop; explicit
    /// calls are idempotent.
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock().expect("queue mutex never poisoned");
        state.shutdown = true;
        drop(state);
        self.shared.wake.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The worker: wait for requests, drain up to `max_batch` of them, execute
/// them as one engine batch, route each answer to its submitter.
fn worker_loop(engine: &Engine, shared: &Shared, max_batch: usize) {
    loop {
        let drained: Vec<Pending> = {
            let mut state = shared.state.lock().expect("queue mutex never poisoned");
            while state.pending.is_empty() && !state.shutdown {
                state = shared.wake.wait(state).expect("queue mutex never poisoned");
            }
            if state.pending.is_empty() {
                // shutdown and fully drained
                return;
            }
            let n = state.pending.len().min(max_batch);
            state.pending.drain(..n).collect()
        };

        let (specs, txs): (Vec<QuerySpec>, Vec<_>) = drained.into_iter().unzip();
        let batch = RequestBatch::from_specs(specs);
        let result = engine.execute(&batch);
        // Counters tick *before* each answer is routed, so a submitter that
        // has received its answer always observes itself as served.
        shared.batches.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(outcome) => {
                for (tx, answer) in txs.into_iter().zip(outcome.queries) {
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    // a submitter that dropped its ticket just misses out
                    let _ = tx.send(Ok(answer));
                }
            }
            Err(e) => {
                // Specs were validated at admission, so this is an engine-
                // level failure; report it to every requester in the batch.
                for tx in txs {
                    shared.served.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Err(e.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerKind;
    use crate::rules::RuleKind;
    use vdstore::DecomposedTable;

    fn engine() -> Engine {
        let vectors: Vec<Vec<f64>> = (0..120)
            .map(|r| {
                let mut v: Vec<f64> =
                    (0..6).map(|d| ((r * 31 + d * 17) % 97) as f64 + 1.0).collect();
                let total: f64 = v.iter().sum();
                v.iter_mut().for_each(|x| *x /= total);
                v
            })
            .collect();
        let table = DecomposedTable::from_vectors("svc", &vectors).unwrap();
        Engine::builder(table).partitions(3).threads(2).build().unwrap()
    }

    #[test]
    fn answers_match_direct_engine_searches() {
        let engine = engine();
        let server = Server::new(engine.clone());
        let q = engine.table().row(17).unwrap();
        let ticket = server.submit(QuerySpec::new(q.clone(), 4)).unwrap();
        let answer = ticket.wait().unwrap();
        assert_eq!(answer.hits, engine.search(&q, 4).unwrap().hits);
        assert_eq!(server.queries_served(), 1);
        assert!(server.batches_executed() >= 1);
    }

    #[test]
    fn per_request_overrides_are_honoured() {
        let engine = engine();
        let server = Server::new(engine.clone());
        let q = engine.table().row(3).unwrap();
        let spec =
            QuerySpec::new(q.clone(), 2).rule(RuleKind::EuclideanEv).planner(PlannerKind::Adaptive);
        let answer = server.submit(spec.clone()).unwrap().wait().unwrap();
        assert_eq!(answer.hits, engine.search_spec(&spec).unwrap().hits);
    }

    #[test]
    fn invalid_specs_are_rejected_at_admission() {
        let server = Server::new(engine());
        assert!(matches!(
            server.submit(QuerySpec::new(vec![0.5; 4], 1)),
            Err(BondError::QueryDimensionMismatch { .. })
        ));
        assert!(matches!(
            server.submit(QuerySpec::new(vec![0.5; 6], 0)),
            Err(BondError::InvalidK { .. })
        ));
        assert_eq!(server.queries_served(), 0);
    }

    #[test]
    fn shutdown_rejects_new_submissions_but_answers_queued_ones() {
        let engine = engine();
        let server = Server::new(engine.clone());
        let q = engine.table().row(0).unwrap();
        let ticket = server.submit(QuerySpec::new(q, 1)).unwrap();
        server.shutdown();
        let q2 = engine.table().row(1).unwrap();
        assert!(matches!(
            server.submit(QuerySpec::new(q2, 1)),
            Err(BondError::ServiceUnavailable(_))
        ));
        // the pre-shutdown ticket still resolves
        assert_eq!(ticket.wait().unwrap().hits.len(), 1);
    }

    #[test]
    fn zero_max_batch_is_rejected() {
        assert!(matches!(
            Server::builder(engine()).max_batch(0).build(),
            Err(BondError::InvalidParams(_))
        ));
    }

    #[test]
    fn bursts_coalesce_into_fewer_engine_passes() {
        let engine = engine();
        // a paused server cannot exist (the worker starts immediately), so
        // submit a burst from many threads and merely assert every answer
        // routes to the right requester; coalescing shows up as
        // batches_executed <= queries_served.
        let server = Server::builder(engine.clone()).max_batch(8).build().unwrap();
        let n = 24;
        let expected: Vec<_> = (0..n)
            .map(|i| {
                let q = engine.table().row((i * 5) as u32).unwrap();
                (q.clone(), engine.search(&q, 3).unwrap().hits)
            })
            .collect();
        std::thread::scope(|scope| {
            for (q, hits) in &expected {
                let server = &server;
                scope.spawn(move || {
                    let answer =
                        server.submit(QuerySpec::new(q.clone(), 3)).unwrap().wait().unwrap();
                    assert_eq!(&answer.hits, hits, "answer routed to the wrong requester");
                });
            }
        });
        assert_eq!(server.queries_served(), n);
        assert!(server.batches_executed() <= n);
    }
}
