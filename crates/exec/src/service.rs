//! A thin, thread-safe serving front-end over an owned [`Engine`].
//!
//! The engine's `queries × segments` scheduler is batch-shaped: it
//! amortizes per-query setup and keeps the worker pool saturated when
//! handed many requests at once. A real service, however, receives
//! requests one at a time from concurrent clients. [`Server`] is the seam
//! between the two: callers [`Server::submit`] individual [`QuerySpec`]s
//! from any thread, a background worker drains the submission queues and
//! *coalesces* whatever has accumulated — up to
//! [`ServerBuilder::max_batch`] requests — into one [`RequestBatch`] per
//! engine pass, and each answer is routed back to the submitter through
//! the [`Ticket`] it received at admission.
//!
//! Admission control happens at the door, and it is cost-aware:
//!
//! * [`Server::submit`] validates the spec against the engine
//!   ([`Engine::validate`]) and rejects invalid requests immediately
//!   (counted in [`Server::queries_rejected`]), so one bad request can
//!   never poison a coalesced batch;
//! * every accepted spec is priced by the engine's feedback-driven cost
//!   model ([`Engine::estimate_cost`]) and queued under its
//!   [`crate::batch::Priority`] class;
//! * the worker admits [`crate::batch::Priority::Interactive`] before `Normal` before
//!   `Batch`, takes the *cheapest estimated* request first within a class
//!   (shortest-job-first keeps the coalescing latency of cheap queries from
//!   being dominated by expensive neighbours), and stops filling the batch
//!   once the summed estimates exceed [`ServerBuilder::max_cost`] — the
//!   deadline-aware batch cut: whatever a pass leaves behind is served by
//!   a later one, so no single pass grows unboundedly long. Aging keeps
//!   that promise honest: a request passed over [`STARVATION_PASSES`]
//!   times stops competing on cost and leads the next pass of its class,
//!   so sustained cheap traffic cannot starve an expensive request.
//!
//! This is deliberately a *synchronous* queue + condvar design — no async
//! runtime exists in this dependency-free workspace — but the seam is the
//! one the ROADMAP's async service layer calls for: requests form batches,
//! batches form engine passes, and the queue is where admission policy
//! grows.
//!
//! ```
//! use bond_exec::service::Server;
//! use bond_exec::{Engine, Priority, QuerySpec, RuleKind};
//! use vdstore::DecomposedTable;
//!
//! let vectors: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![i as f64 / 100.0, 1.0 - i as f64 / 100.0])
//!     .collect();
//! let table = DecomposedTable::from_vectors("demo", &vectors).unwrap();
//! let engine = Engine::builder(table).partitions(4).threads(2).build().unwrap();
//!
//! let server = Server::new(engine);
//! let spec = QuerySpec::new(vec![0.25, 0.75], 3).priority(Priority::Interactive);
//! let ticket = server.submit(spec).unwrap();
//! let answer = ticket.wait().unwrap();
//! assert_eq!(answer.hits.len(), 3);
//! ```

use crate::batch::{QueryOutcome, QuerySpec, RequestBatch};
use crate::engine::Engine;
use bond::{BondError, Result};
use bond_obs::{names, span, Counter, Gauge, Histogram, MetricsRegistry, Span};
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued request: the spec, its estimated cost, how many engine
/// passes have drained around it, and the channel its answer travels back
/// on.
struct Pending {
    spec: QuerySpec,
    cost: f64,
    /// Engine passes this request has been passed over by (aging input).
    waited: u32,
    /// When the request was admitted — the queue-wait clock.
    submitted: Instant,
    tx: mpsc::Sender<Result<QueryOutcome>>,
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending")
            .field("k", &self.spec.k())
            .field("cost", &self.cost)
            .field("waited", &self.waited)
            .finish()
    }
}

/// After this many passed-over engine passes a request stops competing on
/// cost: it sorts ahead of every non-starved entry in its class (oldest
/// first) and, as the first pick of the pass, bypasses the cost budget —
/// shortest-job-first cannot starve an expensive request forever.
pub const STARVATION_PASSES: u32 = 4;

/// The server's pre-registered metric handles, living in the fronted
/// engine's [`MetricsRegistry`] — one registry covers the whole serving
/// stack, and the legacy accessors ([`Server::queries_served`] & co.) are
/// thin reads of the same counters.
#[derive(Debug)]
struct ServiceMetrics {
    /// `service.batch.executed` — engine passes executed.
    batches: Counter,
    /// `service.query.served` — requests answered (success or error).
    served: Counter,
    /// `service.admission.rejected` — requests rejected at admission
    /// (validation failure or shutdown).
    rejected: Counter,
    /// `service.queue.depth` — requests currently queued, all classes.
    queue_depth: Gauge,
    /// `service.queue.wait_us` — admission-to-drain wait per request.
    queue_wait_us: Histogram,
}

impl ServiceMetrics {
    fn new(registry: &MetricsRegistry) -> ServiceMetrics {
        ServiceMetrics {
            batches: registry.counter(names::SERVICE_BATCH_EXECUTED),
            served: registry.counter(names::SERVICE_QUERY_SERVED),
            rejected: registry.counter(names::SERVICE_ADMISSION_REJECTED),
            queue_depth: registry.gauge(names::SERVICE_QUEUE_DEPTH),
            queue_wait_us: registry.histogram(names::SERVICE_QUEUE_WAIT_US),
        }
    }
}

/// The queue shared between submitters and the worker.
#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    wake: Condvar,
    metrics: ServiceMetrics,
}

#[derive(Debug)]
struct QueueState {
    /// One FIFO per priority class, indexed by [`Priority::index`].
    pending: [VecDeque<Pending>; 3],
    shutdown: bool,
}

impl QueueState {
    fn is_empty(&self) -> bool {
        self.pending.iter().all(VecDeque::is_empty)
    }
}

/// Drains up to `max_batch` requests for one engine pass: strict priority
/// classes first (`Interactive` → `Normal` → `Batch`), the
/// cheapest estimate first within a class, and a deadline-aware cut — once
/// the summed estimates of the picked requests would exceed `max_cost`,
/// the batch closes (the first pick of a pass is always admitted, so an
/// oversized single request still executes alone rather than starving).
///
/// Aging keeps shortest-job-first live: a request passed over
/// [`STARVATION_PASSES`] times stops competing on cost — it sorts ahead of
/// its whole class (oldest first) and is admitted even over budget (its
/// cost still counts toward the budget, so the pass after it stays
/// bounded). Strict priority between *classes* is deliberate and not aged
/// away: `Batch` work yields to a sustained `Interactive` stream by
/// design.
fn drain_batch(state: &mut QueueState, max_batch: usize, max_cost: f64) -> Vec<Pending> {
    let mut batch: Vec<Pending> = Vec::new();
    let mut cost_sum = 0.0;
    for queue in &mut state.pending {
        if queue.is_empty() {
            continue;
        }
        // One O(n log n) sort per class instead of repeated O(n) min-scans
        // while the submission mutex is held: decorate with the arrival
        // index, sort starved-then-cheapest, admit the prefix, and return
        // the rest to the queue in arrival order (so future ties still
        // break FIFO).
        let mut entries: Vec<(usize, Pending)> =
            std::mem::take(queue).into_iter().enumerate().collect();
        entries.sort_by(|(ai, a), (bi, b)| {
            let a_starved = a.waited >= STARVATION_PASSES;
            let b_starved = b.waited >= STARVATION_PASSES;
            b_starved
                .cmp(&a_starved) // starved entries first …
                .then(if a_starved && b_starved {
                    ai.cmp(bi) // … oldest first among them
                } else {
                    a.cost.partial_cmp(&b.cost).unwrap_or(std::cmp::Ordering::Equal)
                })
                .then(ai.cmp(bi))
        });
        let mut leftover: Vec<(usize, Pending)> = Vec::new();
        let mut deadline_hit = false;
        for (arrival, pending) in entries {
            // A starved entry is admitted regardless of the budget (its
            // cost still counts toward it): were it merely *exempt from
            // latching*, a sustained higher-class load could hold the
            // batch non-empty forever and the entry — sorted first in its
            // class — would head-of-line-block every cheaper request
            // behind it without ever being served itself.
            let starved = pending.waited >= STARVATION_PASSES;
            // `deadline_hit` is a latch: once a non-starved entry exceeds
            // the budget, the batch is closed for everything after it
            deadline_hit |= !starved && !batch.is_empty() && cost_sum + pending.cost > max_cost;
            if (deadline_hit && !starved) || batch.len() >= max_batch {
                leftover.push((arrival, pending));
            } else {
                cost_sum += pending.cost;
                batch.push(pending);
            }
        }
        leftover.sort_by_key(|&(arrival, _)| arrival);
        queue.extend(leftover.into_iter().map(|(_, mut pending)| {
            pending.waited = pending.waited.saturating_add(1);
            pending
        }));
        if deadline_hit || batch.len() >= max_batch {
            // the deadline cut also closes lower classes: they must not
            // jump a deadline the class above them already hit (a full
            // batch closes them trivially)
            break;
        }
    }
    batch
}

/// Builds a [`Server`] over an engine.
#[derive(Debug)]
pub struct ServerBuilder {
    engine: Engine,
    max_batch: usize,
    max_cost: f64,
}

impl ServerBuilder {
    /// Upper bound on how many queued requests one engine pass coalesces
    /// (default 64). Larger batches amortize setup further; smaller ones
    /// bound per-request latency. `0` is rejected at
    /// [`ServerBuilder::build`].
    #[must_use]
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Upper bound on the *summed estimated cost* (expected
    /// `(candidate, dimension)` evaluations, per [`Engine::estimate_cost`])
    /// one engine pass admits — the deadline-aware batch cut. Default:
    /// unbounded. The first request of a pass is always admitted, so a
    /// single estimate above the bound still executes (alone). Non-finite
    /// (other than `+∞`), NaN or non-positive values are rejected at
    /// [`ServerBuilder::build`].
    #[must_use]
    pub fn max_cost(mut self, max_cost: f64) -> Self {
        self.max_cost = max_cost;
        self
    }

    /// Finishes the build and starts the worker thread.
    ///
    /// # Errors
    ///
    /// [`BondError::InvalidParams`] when `max_batch` is zero or `max_cost`
    /// is NaN or non-positive.
    pub fn build(self) -> Result<Server> {
        if self.max_batch == 0 {
            return Err(BondError::InvalidParams("max_batch must be non-zero".into()));
        }
        if self.max_cost.is_nan() || self.max_cost <= 0.0 {
            return Err(BondError::InvalidParams("max_cost must be positive".into()));
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                pending: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                shutdown: false,
            }),
            wake: Condvar::new(),
            metrics: ServiceMetrics::new(self.engine.metrics()),
        });
        let worker = {
            let engine = self.engine.clone();
            let shared = Arc::clone(&shared);
            let (max_batch, max_cost) = (self.max_batch, self.max_cost);
            std::thread::spawn(move || worker_loop(&engine, &shared, max_batch, max_cost))
        };
        Ok(Server { engine: self.engine, shared, worker: Some(worker) })
    }
}

/// A long-lived, thread-safe k-NN server: an `Arc`'d [`Engine`] plus
/// per-priority submission queues whose worker coalesces concurrent
/// requests into cost-bounded engine batches.
///
/// `Server` is `Send + Sync`; submit from as many threads as you like.
/// Dropping the server shuts the worker down after it drains the queues
/// (every accepted ticket is answered).
#[derive(Debug)]
pub struct Server {
    engine: Engine,
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

/// A claim on one submitted request's answer.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryOutcome>>,
}

impl Ticket {
    /// Blocks until the answer arrives.
    ///
    /// # Errors
    ///
    /// Whatever the engine reported for the coalesced batch, or
    /// [`BondError::ServiceUnavailable`] when the server's worker died
    /// before answering.
    pub fn wait(self) -> Result<QueryOutcome> {
        self.rx.recv().map_err(|_| BondError::ServiceUnavailable("server worker exited".into()))?
    }
}

impl Server {
    /// A server over `engine` with default settings.
    pub fn new(engine: Engine) -> Server {
        Server::builder(engine).build().expect("default server configuration is valid")
    }

    /// Starts building a server over `engine`.
    pub fn builder(engine: Engine) -> ServerBuilder {
        ServerBuilder { engine, max_batch: 64, max_cost: f64::INFINITY }
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Submits one request and returns the [`Ticket`] its answer arrives
    /// on. Validation happens here, at admission: an invalid spec is
    /// rejected immediately (and counted in [`Server::queries_rejected`]),
    /// so every accepted ticket eventually resolves. The accepted spec is
    /// priced by the engine's cost model and queued under its
    /// [`crate::batch::Priority`] class.
    ///
    /// # Errors
    ///
    /// [`Engine::validate`]'s errors for an invalid spec, or
    /// [`BondError::ServiceUnavailable`] after [`Server::shutdown`] —
    /// either way the rejection is recorded.
    pub fn submit(&self, spec: QuerySpec) -> Result<Ticket> {
        if let Err(e) = self.engine.validate(&spec) {
            self.shared.metrics.rejected.inc();
            return Err(e);
        }
        let cost = self.engine.estimate_cost(&spec);
        let (tx, rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("queue mutex never poisoned");
            if state.shutdown {
                drop(state);
                self.shared.metrics.rejected.inc();
                return Err(BondError::ServiceUnavailable("server is shut down".into()));
            }
            state.pending[spec.priority_override().unwrap_or_default().index()]
                .push_back(Pending { spec, cost, waited: 0, submitted: Instant::now(), tx });
        }
        self.shared.metrics.queue_depth.add(1);
        self.shared.wake.notify_one();
        Ok(Ticket { rx })
    }

    /// Number of engine passes executed so far. Together with
    /// [`Server::queries_served`] this exposes the coalescing ratio:
    /// `queries_served / batches_executed` requests were answered per
    /// engine pass on average. A thin read of the registry's
    /// `service.batch.executed` counter.
    pub fn batches_executed(&self) -> usize {
        self.shared.metrics.batches.get() as usize
    }

    /// Number of requests answered so far (successfully or with an error).
    /// A thin read of the registry's `service.query.served` counter.
    pub fn queries_served(&self) -> usize {
        self.shared.metrics.served.get() as usize
    }

    /// Number of requests rejected at admission — validation failures and
    /// post-shutdown submissions. Together with [`Server::queries_served`]
    /// this accounts for every spec ever submitted. A thin read of the
    /// registry's `service.admission.rejected` counter.
    pub fn queries_rejected(&self) -> usize {
        self.shared.metrics.rejected.get() as usize
    }

    /// The metrics registry covering the whole serving stack — the fronted
    /// engine's registry, which this server's `service.*` metrics also
    /// live in.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.engine.metrics()
    }

    /// The current metrics as Prometheus exposition text — what a
    /// `/metrics` scrape endpoint would serve.
    pub fn metrics_text(&self) -> String {
        self.engine.metrics().render_text()
    }

    /// The current metrics as one machine-readable JSON line (counters,
    /// gauges, and histogram `count`/`sum`/`p50`/`p95`/`p99` summaries) —
    /// the `BENCH_JSON` convention the benches print under.
    pub fn metrics_json(&self) -> String {
        self.engine.metrics().render_json()
    }

    /// Stops accepting new requests and wakes the worker so it drains what
    /// is already queued and exits. Called automatically on drop; explicit
    /// calls are idempotent.
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock().expect("queue mutex never poisoned");
        state.shutdown = true;
        drop(state);
        self.shared.wake.notify_all();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The worker: wait for requests, drain a priority-ordered, cost-bounded
/// batch, execute it as one engine pass, route each answer to its
/// submitter.
fn worker_loop(engine: &Engine, shared: &Shared, max_batch: usize, max_cost: f64) {
    loop {
        let drained: Vec<Pending> = {
            let mut state = shared.state.lock().expect("queue mutex never poisoned");
            while state.is_empty() && !state.shutdown {
                state = shared.wake.wait(state).expect("queue mutex never poisoned");
            }
            if state.is_empty() {
                // shutdown and fully drained
                return;
            }
            drain_batch(&mut state, max_batch, max_cost)
        };

        shared.metrics.queue_depth.add(-(drained.len() as i64));
        for pending in &drained {
            // admission-to-drain wait: recorded per request, plus a
            // `service.queue_wait` span (detail = priority class) when
            // tracing is enabled
            let waited_us = pending.submitted.elapsed().as_micros() as u64;
            shared.metrics.queue_wait_us.record(waited_us);
            span::record(
                names::SPAN_SERVICE_QUEUE_WAIT,
                pending.spec.priority_override().unwrap_or_default().index() as u64,
                waited_us,
            );
        }
        let (specs, txs): (Vec<QuerySpec>, Vec<_>) =
            drained.into_iter().map(|p| (p.spec, p.tx)).unzip();
        let batch = RequestBatch::from_specs(specs);
        let exec_span = Span::begin(names::SPAN_SERVICE_EXECUTE).detail(batch.len() as u64);
        let result = engine.execute(&batch);
        drop(exec_span);
        // Counters tick *before* each answer is routed, so a submitter that
        // has received its answer always observes itself as served.
        shared.metrics.batches.inc();
        match result {
            Ok(outcome) => {
                for (tx, answer) in txs.into_iter().zip(outcome.queries) {
                    shared.metrics.served.inc();
                    // a submitter that dropped its ticket just misses out
                    let _ = tx.send(Ok(answer));
                }
            }
            Err(e) => {
                // Specs were validated at admission, so this is an engine-
                // level failure; report it to every requester in the batch.
                for tx in txs {
                    shared.metrics.served.inc();
                    let _ = tx.send(Err(e.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Priority;
    use crate::planner::PlannerKind;
    use crate::rules::RuleKind;
    use vdstore::DecomposedTable;

    fn engine() -> Engine {
        let vectors: Vec<Vec<f64>> = (0..120)
            .map(|r| {
                let mut v: Vec<f64> =
                    (0..6).map(|d| ((r * 31 + d * 17) % 97) as f64 + 1.0).collect();
                let total: f64 = v.iter().sum();
                v.iter_mut().for_each(|x| *x /= total);
                v
            })
            .collect();
        let table = DecomposedTable::from_vectors("svc", &vectors).unwrap();
        Engine::builder(table).partitions(3).threads(2).build().unwrap()
    }

    fn pending(k: usize, cost: f64) -> Pending {
        // drain tests never answer, so the receiver end can drop
        let (tx, _rx) = mpsc::channel();
        Pending {
            spec: QuerySpec::new(vec![0.5; 6], k),
            cost,
            waited: 0,
            submitted: Instant::now(),
            tx,
        }
    }

    fn queue_state(classes: [Vec<Pending>; 3]) -> QueueState {
        QueueState { pending: classes.map(VecDeque::from), shutdown: false }
    }

    #[test]
    fn answers_match_direct_engine_searches() {
        let engine = engine();
        let server = Server::new(engine.clone());
        let q = engine.table().row(17).unwrap();
        let ticket = server.submit(QuerySpec::new(q.clone(), 4)).unwrap();
        let answer = ticket.wait().unwrap();
        assert_eq!(answer.hits, engine.search(&q, 4).unwrap().hits);
        assert_eq!(server.queries_served(), 1);
        assert_eq!(server.queries_rejected(), 0);
        assert!(server.batches_executed() >= 1);
    }

    #[test]
    fn per_request_overrides_are_honoured() {
        let engine = engine();
        let server = Server::new(engine.clone());
        let q = engine.table().row(3).unwrap();
        let spec = QuerySpec::new(q.clone(), 2)
            .rule(RuleKind::EuclideanEv)
            .planner(PlannerKind::Feedback)
            .priority(Priority::Interactive);
        let answer = server.submit(spec.clone()).unwrap().wait().unwrap();
        assert_eq!(answer.hits, engine.search_spec(&spec).unwrap().hits);
    }

    #[test]
    fn invalid_specs_are_rejected_and_counted_at_admission() {
        let server = Server::new(engine());
        assert!(matches!(
            server.submit(QuerySpec::new(vec![0.5; 4], 1)),
            Err(BondError::QueryDimensionMismatch { .. })
        ));
        assert!(matches!(
            server.submit(QuerySpec::new(vec![0.5; 6], 0)),
            Err(BondError::InvalidK { .. })
        ));
        assert_eq!(server.queries_served(), 0);
        assert_eq!(server.queries_rejected(), 2, "every rejection is recorded");
    }

    #[test]
    fn shutdown_rejects_new_submissions_but_answers_queued_ones() {
        let engine = engine();
        let server = Server::new(engine.clone());
        let q = engine.table().row(0).unwrap();
        let ticket = server.submit(QuerySpec::new(q, 1)).unwrap();
        server.shutdown();
        let q2 = engine.table().row(1).unwrap();
        assert!(matches!(
            server.submit(QuerySpec::new(q2, 1)),
            Err(BondError::ServiceUnavailable(_))
        ));
        assert_eq!(server.queries_rejected(), 1, "post-shutdown submissions count as rejected");
        // the pre-shutdown ticket still resolves
        assert_eq!(ticket.wait().unwrap().hits.len(), 1);
    }

    #[test]
    fn invalid_server_configurations_are_rejected() {
        assert!(matches!(
            Server::builder(engine()).max_batch(0).build(),
            Err(BondError::InvalidParams(_))
        ));
        assert!(matches!(
            Server::builder(engine()).max_cost(0.0).build(),
            Err(BondError::InvalidParams(_))
        ));
        assert!(matches!(
            Server::builder(engine()).max_cost(f64::NAN).build(),
            Err(BondError::InvalidParams(_))
        ));
        assert!(Server::builder(engine()).max_cost(f64::INFINITY).build().is_ok());
    }

    #[test]
    fn drain_respects_priority_classes_then_cost_within_a_class() {
        let mut state = queue_state([
            vec![pending(31, 50.0)],
            vec![pending(10, 9.0), pending(11, 3.0), pending(12, 6.0)],
            vec![pending(90, 1.0)],
        ]);
        let batch = drain_batch(&mut state, 8, f64::INFINITY);
        let ks: Vec<usize> = batch.iter().map(|p| p.spec.k()).collect();
        // interactive first (regardless of cost), then normal cheapest
        // first, then batch work
        assert_eq!(ks, vec![31, 11, 12, 10, 90]);
        assert!(state.is_empty());
    }

    #[test]
    fn drain_cuts_the_batch_at_max_cost_and_keeps_the_rest_queued() {
        let mut state = queue_state([
            vec![],
            vec![pending(1, 4.0), pending(2, 4.0), pending(3, 4.0)],
            vec![pending(9, 0.1)],
        ]);
        let batch = drain_batch(&mut state, 8, 10.0);
        let ks: Vec<usize> = batch.iter().map(|p| p.spec.k()).collect();
        // 4 + 4 fit; the third normal request would exceed 10 and closes
        // the batch — including for the cheaper Batch-class request behind
        // it (lower classes must not jump the deadline)
        assert_eq!(ks, vec![1, 2]);
        assert_eq!(state.pending[1].len(), 1);
        assert_eq!(state.pending[2].len(), 1);
        // the leftover is served by the next pass
        let next = drain_batch(&mut state, 8, 10.0);
        assert_eq!(next.len(), 2);
        assert!(state.is_empty());
    }

    #[test]
    fn aged_requests_stop_competing_on_cost() {
        // an expensive request under sustained cheaper load: every pass
        // admits two cost-4 picks and the cost-8 request would be passed
        // over forever under pure shortest-job-first; aging rescues it.
        let mut state = queue_state([vec![], vec![pending(99, 8.0)], vec![]]);
        let mut rescued_at = None;
        for pass in 0..=STARVATION_PASSES {
            state.pending[1].push_back(pending(1, 4.0));
            state.pending[1].push_back(pending(2, 4.0));
            let batch = drain_batch(&mut state, 8, 10.0);
            if batch.iter().any(|p| p.spec.k() == 99) {
                assert_eq!(batch[0].spec.k(), 99, "the starved request leads its pass");
                rescued_at = Some(pass);
                break;
            }
        }
        assert_eq!(
            rescued_at,
            Some(STARVATION_PASSES),
            "aging must admit the expensive request after exactly {STARVATION_PASSES} passes"
        );
    }

    #[test]
    fn starved_requests_are_admitted_over_budget_without_blocking_their_class() {
        // a higher-class pick has consumed most of the budget; the starved
        // normal request must be admitted anyway (not latch the deadline at
        // itself and head-of-line-block the class), and the cheap request
        // behind it is served by the very next pass
        let mut starved = pending(99, 8.0);
        starved.waited = STARVATION_PASSES;
        let mut state =
            queue_state([vec![pending(50, 6.0)], vec![starved, pending(1, 1.0)], vec![]]);
        let batch = drain_batch(&mut state, 8, 10.0);
        let ks: Vec<usize> = batch.iter().map(|p| p.spec.k()).collect();
        assert_eq!(ks, vec![50, 99], "the starved request is admitted over budget");
        let next = drain_batch(&mut state, 8, 10.0);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].spec.k(), 1, "the cheap request is not blocked behind it");
        assert!(state.is_empty());
    }

    #[test]
    fn an_oversized_single_request_still_executes_alone() {
        let mut state = queue_state([vec![], vec![pending(7, 1e12)], vec![]]);
        let batch = drain_batch(&mut state, 8, 10.0);
        assert_eq!(batch.len(), 1, "the first pick is always admitted");
        assert!(state.is_empty());
    }

    #[test]
    fn drain_honours_max_batch_across_classes() {
        let mut state = queue_state([
            vec![pending(1, 1.0), pending(2, 1.0)],
            vec![pending(3, 1.0)],
            vec![pending(4, 1.0)],
        ]);
        let batch = drain_batch(&mut state, 3, f64::INFINITY);
        assert_eq!(batch.len(), 3);
        assert_eq!(state.pending[2].len(), 1, "the batch-class request waits");
    }

    #[test]
    fn cost_bounded_server_still_answers_everything() {
        let engine = engine();
        // a tiny cost budget forces many small engine passes; every ticket
        // must still resolve with the right answer
        let server = Server::builder(engine.clone()).max_batch(8).max_cost(1.0).build().unwrap();
        let expected: Vec<_> = (0..12)
            .map(|i| {
                let q = engine.table().row(i * 7).unwrap();
                (q.clone(), engine.search(&q, 2).unwrap().hits)
            })
            .collect();
        std::thread::scope(|scope| {
            for (i, (q, hits)) in expected.iter().enumerate() {
                let server = &server;
                let priority = Priority::ALL[i % 3];
                scope.spawn(move || {
                    let spec = QuerySpec::new(q.clone(), 2).priority(priority);
                    let answer = server.submit(spec).unwrap().wait().unwrap();
                    assert_eq!(&answer.hits, hits, "answer routed to the wrong requester");
                });
            }
        });
        assert_eq!(server.queries_served(), 12);
        assert!(server.batches_executed() >= 2, "the cost cut splits the burst");
    }

    #[test]
    fn registry_counters_back_the_legacy_accessors() {
        let engine = engine();
        let server = Server::new(engine.clone());
        let q = engine.table().row(8).unwrap();
        server.submit(QuerySpec::new(q, 2)).unwrap().wait().unwrap();
        let _ = server.submit(QuerySpec::new(vec![0.5; 4], 1)); // wrong dims
        assert_eq!(server.queries_served(), 1);
        assert_eq!(server.queries_rejected(), 1);
        // one counting path: the legacy accessors read the registry
        let registry = server.metrics();
        assert_eq!(registry.counter_value("service.query.served"), Some(1));
        assert_eq!(registry.counter_value("service.admission.rejected"), Some(1));
        assert_eq!(
            registry.counter_value("service.batch.executed"),
            Some(server.batches_executed() as u64)
        );
        assert_eq!(registry.gauge_value("service.queue.depth"), Some(0), "queue drained");
        let wait = registry.histogram_snapshot("service.queue.wait_us").unwrap();
        assert_eq!(wait.count, 1, "one served request, one queue-wait sample");
        // engine metrics land in the same registry (shared serving stack)
        assert_eq!(registry.counter_value("engine.query.count"), Some(1));
        let text = server.metrics_text();
        assert!(text.contains("service_query_served 1"), "{text}");
        assert!(text.contains("engine_query_count 1"), "{text}");
        let json = server.metrics_json();
        assert!(json.contains("\"service.query.served\":1"), "{json}");
    }

    #[test]
    fn bursts_coalesce_into_fewer_engine_passes() {
        let engine = engine();
        // a paused server cannot exist (the worker starts immediately), so
        // submit a burst from many threads and merely assert every answer
        // routes to the right requester; coalescing shows up as
        // batches_executed <= queries_served.
        let server = Server::builder(engine.clone()).max_batch(8).build().unwrap();
        let n = 24;
        let expected: Vec<_> = (0..n)
            .map(|i| {
                let q = engine.table().row((i * 5) as u32).unwrap();
                (q.clone(), engine.search(&q, 3).unwrap().hits)
            })
            .collect();
        std::thread::scope(|scope| {
            for (q, hits) in &expected {
                let server = &server;
                scope.spawn(move || {
                    let answer =
                        server.submit(QuerySpec::new(q.clone(), 3)).unwrap().wait().unwrap();
                    assert_eq!(&answer.hits, hits, "answer routed to the wrong requester");
                });
            }
        });
        assert_eq!(server.queries_served(), n);
        assert!(server.batches_executed() <= n);
    }
}
