//! The shared, lock-free κ cell.
//!
//! Segments of one query pool their pruning bounds through a single atomic
//! word holding the bit pattern of the tightest κ proven so far. Publishing
//! and reading use relaxed ordering: κ only ever moves in one direction
//! (up for similarity metrics, down for distances), and pruning with a
//! stale value is merely less effective, never wrong — so no cross-thread
//! happens-before edge is required beyond the scope join.

use bond::KappaCell;
use bond_metrics::Objective;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bit pattern marking "no κ proven yet" (a negative quiet NaN that
/// `f64::to_bits` never produces for a real bound).
const EMPTY: u64 = u64::MAX;

/// An atomic κ shared by all segment searches of one query.
#[derive(Debug)]
pub struct SharedKappa {
    bits: AtomicU64,
    objective: Objective,
}

impl SharedKappa {
    /// Creates an empty cell for a search under the given objective.
    pub fn new(objective: Objective) -> Self {
        SharedKappa { bits: AtomicU64::new(EMPTY), objective }
    }

    /// Whether `candidate` is a tighter κ than `best` under the objective.
    #[inline]
    fn tighter(&self, candidate: f64, best: f64) -> bool {
        match self.objective {
            Objective::Maximize => candidate > best,
            Objective::Minimize => candidate < best,
        }
    }

    /// Merges `local` into the cell and returns the tightest κ known.
    // ordering: relaxed — the κ value travels through this one atomic (the
    // CAS retry loop re-reads on contention, so no tightening is lost) and
    // is self-certifying: any value a worker observes is a bound some
    // search proved, so acting on a stale κ only prunes less, never
    // wrongly. No other memory is published through the cell.
    pub fn merge(&self, local: f64) -> f64 {
        let mut observed = self.bits.load(Ordering::Relaxed);
        loop {
            let best = if observed == EMPTY { None } else { Some(f64::from_bits(observed)) };
            match best {
                Some(best) if !self.tighter(local, best) => return best,
                _ => {
                    match self.bits.compare_exchange_weak(
                        observed,
                        local.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => return local,
                        Err(actual) => observed = actual,
                    }
                }
            }
        }
    }

    /// The tightest κ proven so far, if any.
    // ordering: relaxed — a possibly-stale κ is still a valid bound (see
    // `merge`); missing the newest value only costs pruning opportunity.
    pub fn get(&self) -> Option<f64> {
        let bits = self.bits.load(Ordering::Relaxed);
        (bits != EMPTY).then(|| f64::from_bits(bits))
    }
}

impl KappaCell for SharedKappa {
    fn tighten(&self, local: f64) -> f64 {
        self.merge(local)
    }

    fn current(&self) -> Option<f64> {
        self.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximize_keeps_the_largest() {
        let cell = SharedKappa::new(Objective::Maximize);
        assert_eq!(cell.get(), None);
        assert_eq!(cell.merge(0.4), 0.4);
        assert_eq!(cell.merge(0.2), 0.4);
        assert_eq!(cell.merge(0.9), 0.9);
        assert_eq!(cell.get(), Some(0.9));
    }

    #[test]
    fn minimize_keeps_the_smallest() {
        let cell = SharedKappa::new(Objective::Minimize);
        assert_eq!(cell.merge(3.0), 3.0);
        assert_eq!(cell.merge(5.0), 3.0);
        assert_eq!(cell.merge(1.5), 1.5);
        assert_eq!(cell.get(), Some(1.5));
    }

    #[test]
    fn negative_bounds_survive_the_bit_encoding() {
        let cell = SharedKappa::new(Objective::Minimize);
        assert_eq!(cell.merge(-0.5), -0.5);
        assert_eq!(cell.merge(-2.5), -2.5);
        assert_eq!(cell.merge(-1.0), -2.5);
    }

    #[test]
    fn concurrent_merges_agree_on_the_tightest() {
        let cell = SharedKappa::new(Objective::Maximize);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cell = &cell;
                scope.spawn(move || {
                    for i in 0..1000 {
                        cell.merge((t * 1000 + i) as f64 / 8000.0);
                    }
                });
            }
        });
        assert_eq!(cell.get(), Some(7999.0 / 8000.0));
    }
}
