//! Per-segment search planning policies.
//!
//! The engine's PR 1 behaviour — one global ordering and block schedule for
//! every partition — is kept as [`PlannerKind::Uniform`] and stays
//! bit-identical to the sequential searcher. The stats-driven policies
//! derive a [`SegmentPlan`] per `(query, segment)` pair through the shared
//! [`bond::CostModel`] (the plan-derivation logic itself lives in
//! `bond-core` beside the trace and feedback machinery, so the same model
//! also serves the admission-control cost estimates):
//!
//! * [`PlannerKind::Adaptive`] plans a-priori from each segment's cached
//!   [`SegmentStats`]: dimensions ordered by expected contribution
//!   (`(μ−q)² + σ²` for distances, `min(q, max)` for similarities), warmup
//!   sized to half the ordering-key mass, plus κ-aware whole-segment
//!   skipping against the zone maps.
//! * [`PlannerKind::Feedback`] starts from the same a-priori keys and folds
//!   in what past queries *observed*: per-dimension prune credit re-ranks
//!   the scan order toward dimensions that actually pruned, and the warmup
//!   shrinks toward the observed first-effective-prune depth. Cold segments
//!   plan exactly like `Adaptive`; answers stay rank-correct either way
//!   because the merge re-verifies exact scores.
//!
//! Adaptive and feedback plans give up the bit-identical-refinement
//! guarantee (per-row sums accumulate in different orders per segment); the
//! engine compensates by re-verifying exact scores at merge time.

use bond::{CostModel, SegmentPlan};
use bond_metrics::Objective;
use vdstore::SegmentStats;

/// Which planning policy the engine applies to its segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerKind {
    /// One plan for every segment, derived from the engine's `BondParams` —
    /// bit-identical to the sequential searcher.
    #[default]
    Uniform,
    /// A per-segment plan derived a-priori from the segment's statistics,
    /// plus κ-aware whole-segment skipping against the segments' zone maps.
    Adaptive,
    /// A per-segment plan derived from the segment's statistics *and* the
    /// engine's accumulated execution feedback (observed prune credit,
    /// warmup depths), plus cost-model-driven scheduling: segments are
    /// visited most-promising-first, so the query's own neighbourhood
    /// establishes κ before any far segment starts. Falls back to the
    /// adaptive plan derivation while a segment is cold; also skips
    /// segments against the zone maps.
    Feedback,
}

impl PlannerKind {
    /// Whether this policy derives per-segment plans from statistics — the
    /// policies that enable zone-map segment skipping and whose merges
    /// re-verify exact scores (rank-correct rather than bit-identical).
    pub fn is_stats_driven(self) -> bool {
        matches!(self, PlannerKind::Adaptive | PlannerKind::Feedback)
    }

    /// Whether this policy consults the engine's feedback store.
    pub fn uses_feedback(self) -> bool {
        self == PlannerKind::Feedback
    }
}

/// Derives per-segment plans from segment statistics — a thin, stateless
/// front over [`CostModel::plan`], kept as the engine-facing name of the
/// a-priori policy (the derivation itself moved to `bond-core` so the
/// service layer shares it).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptivePlanner;

impl AdaptivePlanner {
    /// The a-priori plan for one segment; see [`CostModel::plan`].
    pub fn plan(
        &self,
        stats: &SegmentStats,
        query: &[f64],
        weights: Option<&[f64]>,
        objective: Objective,
    ) -> SegmentPlan {
        CostModel::default().plan(stats, query, weights, objective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bond::BlockSchedule;
    use vdstore::DecomposedTable;

    fn segment_stats(vectors: &[Vec<f64>]) -> SegmentStats {
        let t = DecomposedTable::from_vectors("plan", vectors).unwrap();
        t.segment(0..t.rows()).unwrap().stats()
    }

    #[test]
    fn minimize_orders_by_expected_contribution() {
        // dim 0: segment agrees with the query (tiny expected distance);
        // dim 1: strong disagreement; dim 2: high variance.
        let stats = segment_stats(&[
            vec![0.5, 0.9, 0.0],
            vec![0.5, 0.95, 1.0],
            vec![0.5, 0.85, 0.0],
            vec![0.5, 0.9, 1.0],
        ]);
        let q = [0.5, 0.1, 0.5];
        let plan = AdaptivePlanner.plan(&stats, &q, None, Objective::Minimize);
        assert!(plan.is_valid(3));
        assert_eq!(*plan.order.last().unwrap(), 0, "agreeing dim is deferred");
        assert_eq!(plan.order[0], 1, "disagreeing dim leads");
    }

    #[test]
    fn maximize_defers_dims_the_segment_cannot_match() {
        // dim 1 has a large query value but the segment's envelope tops out
        // near zero there — it cannot contribute and goes last.
        let stats = segment_stats(&[vec![0.5, 0.01, 0.3], vec![0.6, 0.02, 0.4]]);
        let q = [0.4, 0.5, 0.1];
        let plan = AdaptivePlanner.plan(&stats, &q, None, Objective::Maximize);
        assert_eq!(plan.order, vec![0, 2, 1]);
    }

    #[test]
    fn weights_scale_the_keys() {
        let stats = segment_stats(&[vec![0.5, 0.5], vec![0.4, 0.6]]);
        let q = [0.0, 0.0];
        // unweighted: both dims have similar expected distance; weight dim 1 up
        let plan = AdaptivePlanner.plan(&stats, &q, Some(&[1.0, 100.0]), Objective::Minimize);
        assert_eq!(plan.order[0], 1);
    }

    #[test]
    fn warmup_covers_half_the_key_mass() {
        let stats = segment_stats(&vec![vec![0.9, 0.05, 0.03, 0.02]; 3]);
        let q = [0.9, 0.05, 0.03, 0.02];
        let plan = AdaptivePlanner.plan(&stats, &q, None, Objective::Maximize);
        // dim 0 alone carries ≥ half the achievable mass
        assert_eq!(plan.schedule, BlockSchedule::WarmupThenFixed { warmup: 1, m: 4 });
    }

    #[test]
    fn degenerate_zero_mass_still_yields_a_valid_plan() {
        let stats = segment_stats(&[vec![0.0, 0.0], vec![0.0, 0.0]]);
        let plan = AdaptivePlanner.plan(&stats, &[0.0, 0.0], None, Objective::Maximize);
        assert!(plan.is_valid(2));
        // no key mass: the whole scan is one warmup block
        assert_eq!(plan.schedule, BlockSchedule::WarmupThenFixed { warmup: 2, m: 4 });
    }

    #[test]
    fn planner_kind_default_is_uniform() {
        assert_eq!(PlannerKind::default(), PlannerKind::Uniform);
    }

    #[test]
    fn stats_driven_classification() {
        assert!(!PlannerKind::Uniform.is_stats_driven());
        assert!(PlannerKind::Adaptive.is_stats_driven());
        assert!(PlannerKind::Feedback.is_stats_driven());
        assert!(PlannerKind::Feedback.uses_feedback());
        assert!(!PlannerKind::Adaptive.uses_feedback());
    }
}
