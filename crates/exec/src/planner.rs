//! Stats-driven per-segment search planning.
//!
//! The engine's PR 1 behaviour — one global ordering and block schedule for
//! every partition — is kept as [`PlannerKind::Uniform`] and stays
//! bit-identical to the sequential searcher. [`PlannerKind::Adaptive`]
//! instead derives a [`SegmentPlan`] per `(query, segment)` pair from the
//! segment's cached [`SegmentStats`]:
//!
//! * **Ordering.** For a distance metric the expected per-dimension
//!   contribution of a segment row is exactly
//!   `E[(v_d − q_d)²] = (μ_d − q_d)² + σ_d²` — dimensions where the segment
//!   disagrees with the query (or spreads widely) are scanned first, which
//!   grows the candidates' lower bounds fastest and prunes soonest. For a
//!   similarity metric the achievable contribution of dimension `d` is
//!   capped at `min(q_d, max_d)`: dimensions whose segment-local envelope
//!   cannot match the query's mass are deferred, sharpening the paper's
//!   "decreasing value in q" heuristic with data-side statistics.
//! * **Schedule.** Pruning cannot start before the scanned prefix carries
//!   enough discriminating mass (for Hq, not before `T(q⁻) > 0.5`), so the
//!   planner sizes a warmup block to cover half of the total ordering key
//!   mass and then prunes every few dimensions.
//!
//! Adaptive plans give up the bit-identical-refinement guarantee (per-row
//! sums accumulate in different orders per segment); the engine compensates
//! by re-verifying exact scores at merge time.

use bond::{BlockSchedule, SegmentPlan};
use bond_metrics::Objective;
use vdstore::SegmentStats;

/// Which planning policy the engine applies to its segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerKind {
    /// One plan for every segment, derived from the engine's `BondParams` —
    /// bit-identical to the sequential searcher.
    #[default]
    Uniform,
    /// A per-segment plan derived from the segment's statistics, plus
    /// κ-aware whole-segment skipping against the segments' zone maps.
    Adaptive,
}

/// Derives per-segment plans from segment statistics.
///
/// Stateless; the interesting inputs are the query, the (optional) metric
/// weights and the per-segment [`SegmentStats`] the engine caches at build
/// time.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptivePlanner;

impl AdaptivePlanner {
    /// The per-dimension ordering keys for one segment (larger = scan
    /// earlier). Falls back to the query value itself for dimensions with
    /// no statistics (empty segments never reach the search loop).
    fn ordering_keys(
        stats: &SegmentStats,
        query: &[f64],
        weights: Option<&[f64]>,
        objective: Objective,
    ) -> Vec<f64> {
        query
            .iter()
            .enumerate()
            .map(|(d, &q)| {
                let w = weights.map_or(1.0, |w| w[d]);
                let key = match (&stats.per_dim[d], objective) {
                    (Some(s), Objective::Minimize) => {
                        let bias = s.mean - q;
                        bias * bias + s.variance
                    }
                    (Some(s), Objective::Maximize) => q.min(s.max),
                    (None, _) => q,
                };
                w * key
            })
            .collect()
    }

    /// The plan for one segment: dimensions sorted by decreasing key
    /// (deterministic tie-break on the dimension index), and a warmup
    /// schedule sized so the first pruning attempt happens once half of the
    /// total key mass has been scanned.
    pub fn plan(
        &self,
        stats: &SegmentStats,
        query: &[f64],
        weights: Option<&[f64]>,
        objective: Objective,
    ) -> SegmentPlan {
        let dims = query.len();
        let keys = Self::ordering_keys(stats, query, weights, objective);
        let mut order: Vec<usize> = (0..dims).collect();
        order.sort_by(|&a, &b| {
            keys[b].partial_cmp(&keys[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });

        let total: f64 = keys.iter().sum();
        let mut warmup = dims;
        if total > 0.0 {
            let mut acc = 0.0;
            for (i, &d) in order.iter().enumerate() {
                acc += keys[d];
                if acc >= total * 0.5 {
                    warmup = i + 1;
                    break;
                }
            }
        }
        // After the warmup, prune every few dimensions: fine-grained enough
        // to cash in a tightening κ, coarse enough to amortize the bound
        // computation (a pruning attempt costs about as much as scanning a
        // dimension; the paper uses m = 8 at 166 dims).
        let m = (dims / 4).clamp(4, 16);
        SegmentPlan::new(order, BlockSchedule::WarmupThenFixed { warmup, m })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdstore::DecomposedTable;

    fn segment_stats(vectors: &[Vec<f64>]) -> SegmentStats {
        let t = DecomposedTable::from_vectors("plan", vectors).unwrap();
        t.segment(0..t.rows()).unwrap().stats()
    }

    #[test]
    fn minimize_orders_by_expected_contribution() {
        // dim 0: segment agrees with the query (tiny expected distance);
        // dim 1: strong disagreement; dim 2: high variance.
        let stats = segment_stats(&[
            vec![0.5, 0.9, 0.0],
            vec![0.5, 0.95, 1.0],
            vec![0.5, 0.85, 0.0],
            vec![0.5, 0.9, 1.0],
        ]);
        let q = [0.5, 0.1, 0.5];
        let plan = AdaptivePlanner.plan(&stats, &q, None, Objective::Minimize);
        assert!(plan.is_valid(3));
        assert_eq!(*plan.order.last().unwrap(), 0, "agreeing dim is deferred");
        assert_eq!(plan.order[0], 1, "disagreeing dim leads");
    }

    #[test]
    fn maximize_defers_dims_the_segment_cannot_match() {
        // dim 1 has a large query value but the segment's envelope tops out
        // near zero there — it cannot contribute and goes last.
        let stats = segment_stats(&[vec![0.5, 0.01, 0.3], vec![0.6, 0.02, 0.4]]);
        let q = [0.4, 0.5, 0.1];
        let plan = AdaptivePlanner.plan(&stats, &q, None, Objective::Maximize);
        assert_eq!(plan.order, vec![0, 2, 1]);
    }

    #[test]
    fn weights_scale_the_keys() {
        let stats = segment_stats(&[vec![0.5, 0.5], vec![0.4, 0.6]]);
        let q = [0.0, 0.0];
        // unweighted: both dims have similar expected distance; weight dim 1 up
        let plan = AdaptivePlanner.plan(&stats, &q, Some(&[1.0, 100.0]), Objective::Minimize);
        assert_eq!(plan.order[0], 1);
    }

    #[test]
    fn warmup_covers_half_the_key_mass() {
        let stats = segment_stats(&vec![vec![0.9, 0.05, 0.03, 0.02]; 3]);
        let q = [0.9, 0.05, 0.03, 0.02];
        let plan = AdaptivePlanner.plan(&stats, &q, None, Objective::Maximize);
        // dim 0 alone carries ≥ half the achievable mass
        assert_eq!(plan.schedule, BlockSchedule::WarmupThenFixed { warmup: 1, m: 4 });
    }

    #[test]
    fn degenerate_zero_mass_still_yields_a_valid_plan() {
        let stats = segment_stats(&[vec![0.0, 0.0], vec![0.0, 0.0]]);
        let plan = AdaptivePlanner.plan(&stats, &[0.0, 0.0], None, Objective::Maximize);
        assert!(plan.is_valid(2));
        // no key mass: the whole scan is one warmup block
        assert_eq!(plan.schedule, BlockSchedule::WarmupThenFixed { warmup: 2, m: 4 });
    }

    #[test]
    fn planner_kind_default_is_uniform() {
        assert_eq!(PlannerKind::default(), PlannerKind::Uniform);
    }
}
