//! Per-query requests and batched outcomes.
//!
//! Serving workloads are heterogeneous: a navigation step wants 10
//! neighbours under the engine's default rule while a re-ranking job in the
//! same batch wants 100 under a weighted metric. A [`QuerySpec`] carries
//! one query's *whole* request — the vector, its own `k`, and optional
//! per-query overrides of the engine's pruning rule and planner — and a
//! [`RequestBatch`] collects specs so the engine amortizes per-query setup
//! (dimension ordering, `T(x)` materialisation, worker-pool spawn) and
//! schedules all `queries × segments` work items on one pool. Every query
//! still reports a per-segment [`bond::PruneTrace`], preserving the paper's
//! evaluation instrumentation in the parallel engine.

use crate::planner::PlannerKind;
use crate::rules::RuleKind;
use bond::{PruneTrace, SegmentPlan};
use std::ops::Range;
use vdstore::topk::Scored;

/// The admission-control class of a request: which queue it waits in at
/// the serving front-end. Within a coalesced batch every spec still
/// executes in one engine pass — priority governs *admission order* when
/// more work is queued than one pass takes, not execution resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive work, admitted before anything else.
    Interactive,
    /// The default class.
    #[default]
    Normal,
    /// Throughput work that yields to both other classes.
    Batch,
}

impl Priority {
    /// All classes, in admission order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Batch];

    /// The queue index of this class (admission order).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }
}

/// How a query's segment scans read column data: exact `f64` fragments
/// only, a quantized first pass in front of the exact search, or codes
/// alone.
///
/// The quantized modes run the branch-free scan kernel of
/// [`bond::quantfilter`] over the store's `u8` code companions before (or
/// instead of) touching exact fragments. Codes are built lazily per engine
/// and cached; engines opened from a store persisted by
/// [`crate::Engine::persist`] get their 8-bit codes from the footer for
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanMode {
    /// Exact fragments only — the classic BOND scan, no codes involved.
    #[default]
    Exact,
    /// Quantized first pass, exact refinement: every segment sweeps its
    /// 8-bit code columns first and only rows whose optimistic interval
    /// bound can still reach the pruning bound κ enter the exact search.
    /// Answers are bit-identical to [`ScanMode::Exact`] — the filter keeps
    /// a superset of the true top-k and the exact phase scores survivors
    /// in the same plan order.
    QuantizedFilter,
    /// Codes only: scores are interval midpoints, no exact fragment is
    /// read, and every hit carries a per-hit error bound
    /// ([`QueryOutcome::error_bounds`]). Recall is workload-dependent;
    /// see the README's quantized-scan section.
    ApproximateQuantized {
        /// Bits per code (1 ..= 8); fewer bits scan less and err more.
        bits: u8,
    },
}

impl ScanMode {
    /// Whether this mode reads quantized code columns at all.
    pub fn uses_codes(self) -> bool {
        !matches!(self, ScanMode::Exact)
    }

    /// Whether this mode answers from codes alone (no exact refinement).
    pub fn is_approximate(self) -> bool {
        matches!(self, ScanMode::ApproximateQuantized { .. })
    }

    /// The code width this mode scans (8 for the filter mode, the chosen
    /// width for the approximate mode, 8 — unused — for exact scans).
    pub fn bits(self) -> u8 {
        match self {
            ScanMode::ApproximateQuantized { bits } => bits,
            _ => 8,
        }
    }

    /// A short lowercase label for logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            ScanMode::Exact => "exact",
            ScanMode::QuantizedFilter => "quantized-filter",
            ScanMode::ApproximateQuantized { .. } => "approximate-quantized",
        }
    }
}

/// One k-NN request: a query vector, how many neighbours it wants, and
/// optional per-query overrides of the engine defaults.
///
/// Built in builder style; every method is chainable:
///
/// ```
/// use bond_exec::{PlannerKind, Priority, QuerySpec, RuleKind};
///
/// let spec = QuerySpec::new(vec![0.25, 0.75], 10)
///     .rule(RuleKind::EuclideanEq)          // override the engine default
///     .planner(PlannerKind::Feedback)       // per-query planning policy
///     .priority(Priority::Interactive);     // admission class at the server
/// assert_eq!(spec.k(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    vector: Vec<f64>,
    k: usize,
    rule: Option<RuleKind>,
    planner: Option<PlannerKind>,
    scan: Option<ScanMode>,
    priority: Priority,
}

impl QuerySpec {
    /// A request for the `k` nearest neighbours of `vector` under the
    /// engine's default rule and planner, at [`Priority::Normal`].
    #[must_use]
    pub fn new(vector: Vec<f64>, k: usize) -> Self {
        QuerySpec { vector, k, rule: None, planner: None, scan: None, priority: Priority::Normal }
    }

    /// Overrides the engine's metric + pruning rule for this query only
    /// (weighted kinds carry their per-dimension weights by value, so a
    /// single batch can mix e.g. unweighted and subspace requests).
    #[must_use]
    pub fn rule(mut self, rule: RuleKind) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Overrides the engine's planning policy for this query only.
    #[must_use]
    pub fn planner(mut self, planner: PlannerKind) -> Self {
        self.planner = Some(planner);
        self
    }

    /// Overrides the engine's scan mode for this query only (e.g. one
    /// approximate navigation query inside an otherwise exact batch).
    #[must_use]
    pub fn scan_mode(mut self, scan: ScanMode) -> Self {
        self.scan = Some(scan);
        self
    }

    /// Sets this request's admission class at a serving front-end (the
    /// engine itself executes whatever batch it is handed; see
    /// [`crate::service::Server`]).
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The query vector.
    pub fn vector(&self) -> &[f64] {
        &self.vector
    }

    /// The number of neighbours this query requests.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-query rule override, when one was set.
    pub fn rule_override(&self) -> Option<&RuleKind> {
        self.rule.as_ref()
    }

    /// The per-query planner override, when one was set.
    pub fn planner_override(&self) -> Option<PlannerKind> {
        self.planner
    }

    /// The per-query scan-mode override, when one was set.
    pub fn scan_mode_override(&self) -> Option<ScanMode> {
        self.scan
    }

    /// The request's admission class.
    pub fn priority_class(&self) -> Priority {
        self.priority
    }
}

/// A heterogeneous set of [`QuerySpec`]s executed together against one
/// table: every spec keeps its own `k`, rule and planner, and the engine
/// answers them in submission order in a single worker-pool pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestBatch {
    specs: Vec<QuerySpec>,
}

impl RequestBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        RequestBatch::default()
    }

    /// A batch over pre-collected specs.
    #[must_use]
    pub fn from_specs(specs: Vec<QuerySpec>) -> Self {
        RequestBatch { specs }
    }

    /// A homogeneous batch: every query requests the same `k` under the
    /// engine defaults (the pre-`QuerySpec` `QueryBatch` shape).
    #[must_use]
    pub fn from_queries(queries: Vec<Vec<f64>>, k: usize) -> Self {
        RequestBatch { specs: queries.into_iter().map(|q| QuerySpec::new(q, k)).collect() }
    }

    /// A single-request batch.
    #[must_use]
    pub fn single(spec: QuerySpec) -> Self {
        RequestBatch { specs: vec![spec] }
    }

    /// Adds one request.
    pub fn push(&mut self, spec: QuerySpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// The requests, in submission order.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl FromIterator<QuerySpec> for RequestBatch {
    fn from_iter<I: IntoIterator<Item = QuerySpec>>(iter: I) -> Self {
        RequestBatch { specs: iter.into_iter().collect() }
    }
}

impl IntoIterator for RequestBatch {
    type Item = QuerySpec;
    type IntoIter = std::vec::IntoIter<QuerySpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.specs.into_iter()
    }
}

/// What one segment contributed to one query.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRun {
    /// The table row range the segment covers.
    pub rows: Range<usize>,
    /// The pruning trace of the segment's branch-and-bound search.
    pub trace: PruneTrace,
    /// The [`SegmentPlan`] the scan actually executed — `None` when the
    /// segment was skipped outright via its zone-map bound (no plan was
    /// ever derived). [`QueryOutcome::analyze`] joins this against the
    /// plan [`crate::Engine::explain`] rendered.
    pub plan: Option<SegmentPlan>,
}

/// The answer to one query of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The k best rows across all segments, best first. Exact scores,
    /// except under [`ScanMode::ApproximateQuantized`] where they are
    /// code-interval midpoints (see [`QueryOutcome::error_bounds`]).
    pub hits: Vec<Scored>,
    /// Per-hit absolute error bounds, parallel to `hits`: `Some` only for
    /// [`ScanMode::ApproximateQuantized`] answers, where hit `i`'s exact
    /// score is guaranteed within `error_bounds[i]` of `hits[i].score`.
    pub error_bounds: Option<Vec<f64>>,
    /// Per-segment traces, in segment (row-range) order.
    pub segments: Vec<SegmentRun>,
}

impl QueryOutcome {
    /// Total `(candidate, dimension)` contribution evaluations across all
    /// segments — the batch analogue of [`PruneTrace::contributions_evaluated`].
    pub fn contributions_evaluated(&self) -> u64 {
        self.segments.iter().map(|s| s.trace.contributions_evaluated).sum()
    }

    /// Total quantized code cells the first-pass filter (or the
    /// approximate scan) swept across all segments; `0` for exact scans.
    pub fn quant_filter_cells(&self) -> u64 {
        self.segments.iter().map(|s| s.trace.filter_cells).sum()
    }

    /// Total rows that survived the quantized filter into the exact phase
    /// across all segments; `0` when no filter ran.
    pub fn quant_refine_rows(&self) -> u64 {
        self.segments.iter().map(|s| s.trace.refine_rows).sum()
    }

    /// Fraction of filtered rows the quantized first pass let through to
    /// exact refinement, or `None` when no filter ran. Lower is better —
    /// it is the lever behind the cost model's quantized estimates.
    pub fn quant_filter_selectivity(&self) -> Option<f64> {
        let swept: u64 = self
            .segments
            .iter()
            .filter(|s| s.trace.filter_cells > 0)
            .map(|s| s.rows.len() as u64)
            .sum();
        (swept > 0).then(|| self.quant_refine_rows() as f64 / swept as f64)
    }

    /// Fraction of the naive `rows × dims` work actually performed.
    pub fn work_fraction(&self, rows: usize, dims: usize) -> f64 {
        if rows == 0 || dims == 0 {
            return 0.0;
        }
        self.contributions_evaluated() as f64 / (rows as f64 * dims as f64)
    }

    /// Total pruning attempts across all segments.
    pub fn pruning_attempts(&self) -> usize {
        self.segments.iter().map(|s| s.trace.pruning_attempts).sum()
    }

    /// Number of segments the engine skipped outright via their zone-map
    /// envelope bound (adaptive planning only; skipped segments report zero
    /// contributions and zero dimensions accessed).
    pub fn segments_skipped(&self) -> usize {
        self.segments.iter().filter(|s| s.trace.segment_skipped).count()
    }
}

/// The answers to a whole batch, in request submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One outcome per request.
    pub queries: Vec<QueryOutcome>,
}

impl BatchOutcome {
    /// Total contribution evaluations over the whole batch.
    pub fn contributions_evaluated(&self) -> u64 {
        self.queries.iter().map(|q| q.contributions_evaluated()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_carries_overrides() {
        let plain = QuerySpec::new(vec![0.1, 0.9], 5);
        assert_eq!(plain.vector(), &[0.1, 0.9]);
        assert_eq!(plain.k(), 5);
        assert_eq!(plain.rule_override(), None);
        assert_eq!(plain.planner_override(), None);
        assert_eq!(plain.priority_class(), Priority::Normal);

        let spec = QuerySpec::new(vec![0.5, 0.5], 3)
            .rule(RuleKind::EuclideanEq)
            .planner(PlannerKind::Adaptive)
            .priority(Priority::Batch);
        assert_eq!(spec.rule_override(), Some(&RuleKind::EuclideanEq));
        assert_eq!(spec.planner_override(), Some(PlannerKind::Adaptive));
        assert_eq!(spec.priority_class(), Priority::Batch);
    }

    #[test]
    fn priority_admission_order() {
        assert_eq!(Priority::default(), Priority::Normal);
        let indices: Vec<usize> = Priority::ALL.iter().map(|p| p.index()).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert!(Priority::Interactive < Priority::Normal);
        assert!(Priority::Normal < Priority::Batch);
    }

    #[test]
    fn batch_construction_and_accessors() {
        let mut b = RequestBatch::new();
        assert!(b.is_empty());
        assert_eq!(b, RequestBatch::default());
        b.push(QuerySpec::new(vec![0.1, 0.9], 5)).push(QuerySpec::new(vec![0.5, 0.5], 2));
        assert_eq!(b.len(), 2);
        assert_eq!(b.specs()[1].k(), 2);

        let single = RequestBatch::single(QuerySpec::new(vec![1.0], 1));
        assert_eq!(single.len(), 1);

        let homogeneous = RequestBatch::from_queries(vec![vec![1.0], vec![2.0]], 3);
        assert_eq!(homogeneous.len(), 2);
        assert!(homogeneous.specs().iter().all(|s| s.k() == 3 && s.rule_override().is_none()));

        let collected: RequestBatch =
            (0..4).map(|i| QuerySpec::new(vec![i as f64], i + 1)).collect();
        assert_eq!(collected.len(), 4);
        let ks: Vec<usize> = collected.into_iter().map(|s| s.k()).collect();
        assert_eq!(ks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn outcome_aggregates_sum_over_segments() {
        let outcome = QueryOutcome {
            hits: vec![],
            error_bounds: None,
            segments: vec![
                SegmentRun {
                    rows: 0..50,
                    trace: PruneTrace {
                        contributions_evaluated: 100,
                        pruning_attempts: 2,
                        filter_cells: 200,
                        refine_rows: 10,
                        ..PruneTrace::default()
                    },
                    plan: None,
                },
                SegmentRun {
                    rows: 50..100,
                    trace: PruneTrace {
                        contributions_evaluated: 60,
                        pruning_attempts: 1,
                        filter_cells: 200,
                        refine_rows: 15,
                        ..PruneTrace::default()
                    },
                    plan: None,
                },
            ],
        };
        assert_eq!(outcome.contributions_evaluated(), 160);
        assert_eq!(outcome.pruning_attempts(), 3);
        assert_eq!(outcome.segments_skipped(), 0);
        assert_eq!(outcome.quant_filter_cells(), 400);
        assert_eq!(outcome.quant_refine_rows(), 25);
        assert_eq!(outcome.quant_filter_selectivity(), Some(0.25));
        assert!((outcome.work_fraction(100, 4) - 0.4).abs() < 1e-12);
        assert_eq!(outcome.work_fraction(0, 4), 0.0);
        let batch = BatchOutcome { queries: vec![outcome.clone(), outcome] };
        assert_eq!(batch.contributions_evaluated(), 320);
    }

    #[test]
    fn exact_outcomes_report_no_filter_phase() {
        let outcome = QueryOutcome {
            hits: vec![],
            error_bounds: None,
            segments: vec![SegmentRun {
                rows: 0..10,
                trace: PruneTrace { contributions_evaluated: 40, ..PruneTrace::default() },
                plan: None,
            }],
        };
        assert_eq!(outcome.quant_filter_cells(), 0);
        assert_eq!(outcome.quant_filter_selectivity(), None);
    }

    #[test]
    fn scan_mode_classification_and_labels() {
        assert_eq!(ScanMode::default(), ScanMode::Exact);
        assert!(!ScanMode::Exact.uses_codes());
        assert!(ScanMode::QuantizedFilter.uses_codes());
        assert!(ScanMode::ApproximateQuantized { bits: 6 }.uses_codes());
        assert!(!ScanMode::QuantizedFilter.is_approximate());
        assert!(ScanMode::ApproximateQuantized { bits: 6 }.is_approximate());
        assert_eq!(ScanMode::ApproximateQuantized { bits: 6 }.bits(), 6);
        assert_eq!(ScanMode::QuantizedFilter.bits(), 8);
        assert_eq!(ScanMode::Exact.label(), "exact");
        assert_eq!(ScanMode::QuantizedFilter.label(), "quantized-filter");
        assert_eq!(ScanMode::ApproximateQuantized { bits: 4 }.label(), "approximate-quantized");

        let spec = QuerySpec::new(vec![0.5], 1).scan_mode(ScanMode::QuantizedFilter);
        assert_eq!(spec.scan_mode_override(), Some(ScanMode::QuantizedFilter));
        assert_eq!(QuerySpec::new(vec![0.5], 1).scan_mode_override(), None);
    }
}
