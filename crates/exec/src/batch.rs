//! Batched queries and their outcomes.
//!
//! Serving workloads rarely issue one query at a time: a navigation step in
//! an image browser, a relevance-feedback loop, or a bulk re-ranking job
//! all submit *batches* against the same table. [`QueryBatch`] carries them
//! together so the engine amortizes its per-query setup (dimension
//! ordering, `T(x)` materialisation, worker-pool spawn) and schedules all
//! `queries × segments` work items on one pool. Every query reports a
//! per-segment [`bond::PruneTrace`], preserving the paper's evaluation
//! instrumentation in the parallel engine.

use bond::PruneTrace;
use std::ops::Range;
use vdstore::topk::Scored;

/// A set of k-NN queries executed together against one table.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBatch {
    queries: Vec<Vec<f64>>,
    k: usize,
}

impl QueryBatch {
    /// An empty batch requesting `k` neighbours per query.
    pub fn new(k: usize) -> Self {
        QueryBatch { queries: Vec::new(), k }
    }

    /// A batch over pre-collected query vectors.
    pub fn from_queries(queries: Vec<Vec<f64>>, k: usize) -> Self {
        QueryBatch { queries, k }
    }

    /// A single-query batch.
    pub fn single(query: Vec<f64>, k: usize) -> Self {
        QueryBatch { queries: vec![query], k }
    }

    /// Adds one query.
    pub fn push(&mut self, query: Vec<f64>) -> &mut Self {
        self.queries.push(query);
        self
    }

    /// The number of neighbours requested per query.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The queries, in submission order.
    pub fn queries(&self) -> &[Vec<f64>] {
        &self.queries
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// What one segment contributed to one query.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRun {
    /// The table row range the segment covers.
    pub rows: Range<usize>,
    /// The pruning trace of the segment's branch-and-bound search.
    pub trace: PruneTrace,
}

/// The answer to one query of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The k best rows across all segments, best first, with exact scores.
    pub hits: Vec<Scored>,
    /// Per-segment traces, in segment (row-range) order.
    pub segments: Vec<SegmentRun>,
}

impl QueryOutcome {
    /// Total `(candidate, dimension)` contribution evaluations across all
    /// segments — the batch analogue of [`PruneTrace::contributions_evaluated`].
    pub fn contributions_evaluated(&self) -> u64 {
        self.segments.iter().map(|s| s.trace.contributions_evaluated).sum()
    }

    /// Fraction of the naive `rows × dims` work actually performed.
    pub fn work_fraction(&self, rows: usize, dims: usize) -> f64 {
        if rows == 0 || dims == 0 {
            return 0.0;
        }
        self.contributions_evaluated() as f64 / (rows as f64 * dims as f64)
    }

    /// Total pruning attempts across all segments.
    pub fn pruning_attempts(&self) -> usize {
        self.segments.iter().map(|s| s.trace.pruning_attempts).sum()
    }

    /// Number of segments the engine skipped outright via their zone-map
    /// envelope bound (adaptive planning only; skipped segments report zero
    /// contributions and zero dimensions accessed).
    pub fn segments_skipped(&self) -> usize {
        self.segments.iter().filter(|s| s.trace.segment_skipped).count()
    }
}

/// The answers to a whole batch, in query submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One outcome per query.
    pub queries: Vec<QueryOutcome>,
}

impl BatchOutcome {
    /// Total contribution evaluations over the whole batch.
    pub fn contributions_evaluated(&self) -> u64 {
        self.queries.iter().map(|q| q.contributions_evaluated()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_construction() {
        let mut b = QueryBatch::new(5);
        assert!(b.is_empty());
        b.push(vec![0.1, 0.9]).push(vec![0.5, 0.5]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.k(), 5);
        assert_eq!(b.queries()[1], vec![0.5, 0.5]);

        let single = QueryBatch::single(vec![1.0], 1);
        assert_eq!(single.len(), 1);
        let from = QueryBatch::from_queries(vec![vec![1.0], vec![2.0]], 3);
        assert_eq!(from.len(), 2);
    }

    #[test]
    fn outcome_aggregates_sum_over_segments() {
        let outcome = QueryOutcome {
            hits: vec![],
            segments: vec![
                SegmentRun {
                    rows: 0..50,
                    trace: PruneTrace {
                        contributions_evaluated: 100,
                        pruning_attempts: 2,
                        ..PruneTrace::default()
                    },
                },
                SegmentRun {
                    rows: 50..100,
                    trace: PruneTrace {
                        contributions_evaluated: 60,
                        pruning_attempts: 1,
                        ..PruneTrace::default()
                    },
                },
            ],
        };
        assert_eq!(outcome.contributions_evaluated(), 160);
        assert_eq!(outcome.pruning_attempts(), 3);
        assert_eq!(outcome.segments_skipped(), 0);
        assert!((outcome.work_fraction(100, 4) - 0.4).abs() < 1e-12);
        assert_eq!(outcome.work_fraction(0, 4), 0.0);
        let batch = BatchOutcome { queries: vec![outcome.clone(), outcome] };
        assert_eq!(batch.contributions_evaluated(), 320);
    }
}
