//! Per-query requests and batched outcomes.
//!
//! Serving workloads are heterogeneous: a navigation step wants 10
//! neighbours under the engine's default rule while a re-ranking job in the
//! same batch wants 100 under a weighted metric. A [`QuerySpec`] carries
//! one query's *whole* request — its [`QueryKind`] (bare top-k or a
//! multi-feature combination), the vector, its own `k`, an optional
//! eligibility filter, and optional per-query overrides of the engine's
//! pruning rule and planner — and a [`RequestBatch`] collects specs so the
//! engine amortizes per-query setup (dimension ordering, `T(x)`
//! materialisation, worker-pool spawn) and schedules all
//! `queries × segments` work items on one pool. Every query still reports a
//! per-segment [`bond::PruneTrace`], preserving the paper's evaluation
//! instrumentation in the parallel engine.

use crate::planner::PlannerKind;
use crate::rules::RuleKind;
use bond::{BondError, FeatureMetricKind, PruneTrace, Result, SegmentPlan};
use bond_metrics::{FuzzyMax, FuzzyMin, ScoreAggregate, WeightedAverage};
use std::ops::Range;
use std::sync::Arc;
use vdstore::topk::Scored;
use vdstore::{Bitmap, DecomposedTable};

/// The admission-control class of a request: which queue it waits in at
/// the serving front-end. Within a coalesced batch every spec still
/// executes in one engine pass — priority governs *admission order* when
/// more work is queued than one pass takes, not execution resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive work, admitted before anything else.
    Interactive,
    /// The default class.
    #[default]
    Normal,
    /// Throughput work that yields to both other classes.
    Batch,
}

impl Priority {
    /// All classes, in admission order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Batch];

    /// The queue index of this class (admission order).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }
}

/// How a query's segment scans read column data: exact `f64` fragments
/// only, a quantized first pass in front of the exact search, or codes
/// alone.
///
/// The quantized modes run the branch-free scan kernel of
/// [`bond::quantfilter`] over the store's `u8` code companions before (or
/// instead of) touching exact fragments. Codes are built lazily per engine
/// and cached; engines opened from a store persisted by
/// [`crate::Engine::persist`] get their 8-bit codes from the footer for
/// free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanMode {
    /// Exact fragments only — the classic BOND scan, no codes involved.
    #[default]
    Exact,
    /// Quantized first pass, exact refinement: every segment sweeps its
    /// 8-bit code columns first and only rows whose optimistic interval
    /// bound can still reach the pruning bound κ enter the exact search.
    /// Answers are bit-identical to [`ScanMode::Exact`] — the filter keeps
    /// a superset of the true top-k and the exact phase scores survivors
    /// in the same plan order.
    QuantizedFilter,
    /// Codes only: scores are interval midpoints, no exact fragment is
    /// read, and every hit carries a per-hit error bound
    /// ([`QueryOutcome::error_bounds`]). Recall is workload-dependent;
    /// see the README's quantized-scan section.
    ApproximateQuantized {
        /// Bits per code (1 ..= 8); fewer bits scan less and err more.
        bits: u8,
    },
}

impl ScanMode {
    /// Whether this mode reads quantized code columns at all.
    pub fn uses_codes(self) -> bool {
        !matches!(self, ScanMode::Exact)
    }

    /// Whether this mode answers from codes alone (no exact refinement).
    pub fn is_approximate(self) -> bool {
        matches!(self, ScanMode::ApproximateQuantized { .. })
    }

    /// The code width this mode scans (8 for the filter mode, the chosen
    /// width for the approximate mode, 8 — unused — for exact scans).
    pub fn bits(self) -> u8 {
        match self {
            ScanMode::ApproximateQuantized { bits } => bits,
            _ => 8,
        }
    }

    /// A short lowercase label for logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            ScanMode::Exact => "exact",
            ScanMode::QuantizedFilter => "quantized-filter",
            ScanMode::ApproximateQuantized { .. } => "approximate-quantized",
        }
    }
}

/// How the per-feature similarities of a multi-feature request combine
/// into one global score — a declarative, validatable mirror of the
/// [`ScoreAggregate`] implementations in `bond-metrics` (Section 8.2's
/// monotonic aggregates), so a spec stays plain data until admission.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateSpec {
    /// Weighted arithmetic mean; one non-negative weight per feature,
    /// normalized at build time.
    WeightedAverage(Vec<f64>),
    /// Fuzzy conjunction: the worst component similarity.
    FuzzyMin,
    /// Fuzzy disjunction: the best component similarity.
    FuzzyMax,
}

impl AggregateSpec {
    /// Checks the aggregate against the spec's feature count.
    pub fn validate(&self, features: usize) -> Result<()> {
        match self {
            AggregateSpec::WeightedAverage(weights) => {
                if weights.len() != features {
                    return Err(BondError::InvalidParams(format!(
                        "aggregate carries {} weights for {features} features",
                        weights.len()
                    )));
                }
                if WeightedAverage::new(weights.clone()).is_none() {
                    return Err(BondError::InvalidParams(
                        "aggregate weights must be non-negative with a positive sum".into(),
                    ));
                }
                Ok(())
            }
            AggregateSpec::FuzzyMin | AggregateSpec::FuzzyMax => Ok(()),
        }
    }

    /// Materialises the combining function. Call [`AggregateSpec::validate`]
    /// first; building an invalid weighted average is an error.
    pub fn build(&self) -> Result<Box<dyn ScoreAggregate>> {
        match self {
            AggregateSpec::WeightedAverage(weights) => WeightedAverage::new(weights.clone())
                .map(|a| Box::new(a) as Box<dyn ScoreAggregate>)
                .ok_or_else(|| {
                    BondError::InvalidParams(
                        "aggregate weights must be non-negative with a positive sum".into(),
                    )
                }),
            AggregateSpec::FuzzyMin => Ok(Box::new(FuzzyMin)),
            AggregateSpec::FuzzyMax => Ok(Box::new(FuzzyMax)),
        }
    }

    /// A short lowercase label for plans and reports.
    pub fn label(&self) -> &'static str {
        match self {
            AggregateSpec::WeightedAverage(_) => "weighted_average",
            AggregateSpec::FuzzyMin => "fuzzy_min",
            AggregateSpec::FuzzyMax => "fuzzy_max",
        }
    }
}

/// One feature component of a multi-feature request: a query vector, the
/// metric it is scored under, and the feature collection it runs against —
/// either the engine's own table (the default) or a sibling collection
/// sharing the engine's row-id space (e.g. the "texture" table beside the
/// engine's "color" table).
#[derive(Debug, Clone)]
pub struct FeatureSpec {
    query: Vec<f64>,
    metric: FeatureMetricKind,
    table: Option<Arc<DecomposedTable>>,
}

impl FeatureSpec {
    /// A feature scored against the engine's own collection.
    #[must_use]
    pub fn new(query: Vec<f64>, metric: FeatureMetricKind) -> Self {
        FeatureSpec { query, metric, table: None }
    }

    /// A feature scored against a sibling collection, which must have the
    /// same number of rows as the engine's table (checked at admission).
    #[must_use]
    pub fn external(
        query: Vec<f64>,
        metric: FeatureMetricKind,
        table: Arc<DecomposedTable>,
    ) -> Self {
        FeatureSpec { query, metric, table: Some(table) }
    }

    /// The feature's query vector.
    pub fn query(&self) -> &[f64] {
        &self.query
    }

    /// The metric this feature is scored under.
    pub fn metric(&self) -> FeatureMetricKind {
        self.metric
    }

    /// The sibling collection, or `None` for the engine's own table.
    pub fn table(&self) -> Option<&Arc<DecomposedTable>> {
        self.table.as_ref()
    }
}

impl PartialEq for FeatureSpec {
    fn eq(&self, other: &Self) -> bool {
        // tables compare by identity: two specs are equal when they name
        // the same collection, not merely equal data
        self.query == other.query
            && self.metric == other.metric
            && match (&self.table, &other.table) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            }
    }
}

/// A multi-feature combination request (Section 8.2): per-feature queries,
/// metrics and collections plus the monotonic aggregate that combines them.
/// Carried by [`QueryKind::MultiFeature`]; executed as one synchronized
/// scan per segment under the engine's shared-κ protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFeatureSpec {
    features: Vec<FeatureSpec>,
    aggregate: AggregateSpec,
}

impl MultiFeatureSpec {
    /// Combines `features` under `aggregate`. Dimensionalities, row spaces
    /// and aggregate arity are checked at engine admission, not here — a
    /// spec is plain data until it meets a table.
    #[must_use]
    pub fn new(features: Vec<FeatureSpec>, aggregate: AggregateSpec) -> Self {
        MultiFeatureSpec { features, aggregate }
    }

    /// The feature components, in aggregate order.
    pub fn features(&self) -> &[FeatureSpec] {
        &self.features
    }

    /// The combining aggregate.
    pub fn aggregate(&self) -> &AggregateSpec {
        &self.aggregate
    }
}

/// What shape of answer a [`QuerySpec`] requests from the engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum QueryKind {
    /// Single-feature top-k over the engine's table — the classic request.
    #[default]
    TopK,
    /// A synchronized multi-feature combination query.
    MultiFeature(MultiFeatureSpec),
}

/// One k-NN request: a query vector, how many neighbours it wants, and
/// optional per-query overrides of the engine defaults.
///
/// Built in builder style; every method is chainable:
///
/// ```
/// use bond_exec::{PlannerKind, Priority, QuerySpec, RuleKind};
///
/// let spec = QuerySpec::new(vec![0.25, 0.75], 10)
///     .rule(RuleKind::EuclideanEq)          // override the engine default
///     .planner(PlannerKind::Feedback)       // per-query planning policy
///     .priority(Priority::Interactive);     // admission class at the server
/// assert_eq!(spec.k(), 10);
/// ```
///
/// A relational predicate rides along as an eligibility bitmap
/// ([`QuerySpec::filter`]); a multi-feature combination request is built
/// with [`QuerySpec::multi_feature`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    kind: QueryKind,
    vector: Vec<f64>,
    k: usize,
    filter: Option<Arc<Bitmap>>,
    rule: Option<RuleKind>,
    planner: Option<PlannerKind>,
    scan: Option<ScanMode>,
    priority: Option<Priority>,
}

impl QuerySpec {
    /// A request for the `k` nearest neighbours of `vector` under the
    /// engine's default rule and planner, at the server's default
    /// admission class.
    #[must_use]
    pub fn new(vector: Vec<f64>, k: usize) -> Self {
        QuerySpec {
            kind: QueryKind::TopK,
            vector,
            k,
            filter: None,
            rule: None,
            planner: None,
            scan: None,
            priority: None,
        }
    }

    /// A multi-feature combination request: the `k` rows with the best
    /// aggregate similarity over all feature components. The spec's
    /// `vector()` is empty — per-feature queries live in the
    /// [`MultiFeatureSpec`]. Rule and scan-mode overrides do not apply to
    /// this kind (each feature prunes under its own metric's rule, exact
    /// fragments only) and are rejected at admission.
    #[must_use]
    pub fn multi_feature(spec: MultiFeatureSpec, k: usize) -> Self {
        QuerySpec {
            kind: QueryKind::MultiFeature(spec),
            vector: Vec::new(),
            k,
            filter: None,
            rule: None,
            planner: None,
            scan: None,
            priority: None,
        }
    }

    /// Overrides the engine's metric + pruning rule for this query only
    /// (weighted kinds carry their per-dimension weights by value, so a
    /// single batch can mix e.g. unweighted and subspace requests).
    #[must_use]
    pub fn rule(mut self, rule: RuleKind) -> Self {
        self.rule = Some(rule);
        self
    }

    /// Overrides the engine's planning policy for this query only.
    #[must_use]
    pub fn planner(mut self, planner: PlannerKind) -> Self {
        self.planner = Some(planner);
        self
    }

    /// Overrides the engine's scan mode for this query only (e.g. one
    /// approximate navigation query inside an otherwise exact batch).
    #[must_use]
    pub fn scan_mode(mut self, scan: ScanMode) -> Self {
        self.scan = Some(scan);
        self
    }

    /// Sets this request's admission class at a serving front-end (the
    /// engine itself executes whatever batch it is handed; see
    /// [`crate::service::Server`]).
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Restricts the search to the rows set in `filter` — the Section 6.1
    /// composition of a relational predicate ("photographs taken in 1992")
    /// with the k-NN search. The bitmap addresses the engine table's full
    /// row domain; the scan, the κ-seeding, the quantized first pass and
    /// the zone-map segment skips all range over eligible rows only, and a
    /// segment with no eligible row is never touched. A filter whose
    /// domain mismatches the table, or that leaves no live row eligible,
    /// is rejected at admission with [`bond::BondError::InvalidFilter`].
    #[must_use]
    pub fn filter(mut self, filter: Bitmap) -> Self {
        self.filter = Some(Arc::new(filter));
        self
    }

    /// Restricts the search to a pre-shared eligibility bitmap without
    /// copying it (the relational front-end hands the same pushed-down
    /// predicate to many specs).
    #[must_use]
    pub fn filter_shared(mut self, filter: Arc<Bitmap>) -> Self {
        self.filter = Some(filter);
        self
    }

    /// What shape of answer this request asks for.
    pub fn kind(&self) -> &QueryKind {
        &self.kind
    }

    /// The query vector (empty for [`QueryKind::MultiFeature`] requests,
    /// whose per-feature vectors live in their [`MultiFeatureSpec`]).
    pub fn vector(&self) -> &[f64] {
        &self.vector
    }

    /// The number of neighbours this query requests.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The eligibility filter, when one was set.
    pub fn filter_override(&self) -> Option<&Arc<Bitmap>> {
        self.filter.as_ref()
    }

    /// The per-query rule override, when one was set.
    pub fn rule_override(&self) -> Option<&RuleKind> {
        self.rule.as_ref()
    }

    /// The per-query planner override, when one was set.
    pub fn planner_override(&self) -> Option<PlannerKind> {
        self.planner
    }

    /// The per-query scan-mode override, when one was set.
    pub fn scan_mode_override(&self) -> Option<ScanMode> {
        self.scan
    }

    /// The per-query admission-class override, when one was set (the
    /// serving front-end queues unannotated requests at
    /// [`Priority::Normal`]). Renamed from the pre-PR-9 `priority_class`,
    /// which was the one accessor that didn't follow the `_override`
    /// convention.
    pub fn priority_override(&self) -> Option<Priority> {
        self.priority
    }

    /// Checks this spec against an engine without executing it — the
    /// single validation entry point shared by direct execution and
    /// service admission. Equivalent to [`crate::Engine::validate`].
    pub fn validate_against(&self, engine: &crate::Engine) -> Result<()> {
        engine.validate(self)
    }
}

/// A heterogeneous set of [`QuerySpec`]s executed together against one
/// table: every spec keeps its own `k`, rule and planner, and the engine
/// answers them in submission order in a single worker-pool pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestBatch {
    specs: Vec<QuerySpec>,
}

impl RequestBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        RequestBatch::default()
    }

    /// A batch over pre-collected specs.
    #[must_use]
    pub fn from_specs(specs: Vec<QuerySpec>) -> Self {
        RequestBatch { specs }
    }

    /// A homogeneous batch: every query requests the same `k` under the
    /// engine defaults (the pre-`QuerySpec` `QueryBatch` shape).
    #[must_use]
    pub fn from_queries(queries: Vec<Vec<f64>>, k: usize) -> Self {
        RequestBatch { specs: queries.into_iter().map(|q| QuerySpec::new(q, k)).collect() }
    }

    /// A single-request batch.
    #[must_use]
    pub fn single(spec: QuerySpec) -> Self {
        RequestBatch { specs: vec![spec] }
    }

    /// Adds one request.
    pub fn push(&mut self, spec: QuerySpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// The requests, in submission order.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the batch holds no requests.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl FromIterator<QuerySpec> for RequestBatch {
    fn from_iter<I: IntoIterator<Item = QuerySpec>>(iter: I) -> Self {
        RequestBatch { specs: iter.into_iter().collect() }
    }
}

impl IntoIterator for RequestBatch {
    type Item = QuerySpec;
    type IntoIter = std::vec::IntoIter<QuerySpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.specs.into_iter()
    }
}

/// What one segment contributed to one query.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentRun {
    /// The table row range the segment covers.
    pub rows: Range<usize>,
    /// The pruning trace of the segment's branch-and-bound search.
    pub trace: PruneTrace,
    /// The [`SegmentPlan`] the scan actually executed — `None` when the
    /// segment was skipped outright via its zone-map bound (no plan was
    /// ever derived). [`QueryOutcome::analyze`] joins this against the
    /// plan [`crate::Engine::explain`] rendered.
    pub plan: Option<SegmentPlan>,
}

/// The answer to one query of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The k best rows across all segments, best first. Exact scores,
    /// except under [`ScanMode::ApproximateQuantized`] where they are
    /// code-interval midpoints (see [`QueryOutcome::error_bounds`]).
    pub hits: Vec<Scored>,
    /// Per-hit absolute error bounds, parallel to `hits`: `Some` only for
    /// [`ScanMode::ApproximateQuantized`] answers, where hit `i`'s exact
    /// score is guaranteed within `error_bounds[i]` of `hits[i].score`.
    pub error_bounds: Option<Vec<f64>>,
    /// Per-segment traces, in segment (row-range) order.
    pub segments: Vec<SegmentRun>,
}

impl QueryOutcome {
    /// Total `(candidate, dimension)` contribution evaluations across all
    /// segments — the batch analogue of [`PruneTrace::contributions_evaluated`].
    pub fn contributions_evaluated(&self) -> u64 {
        self.segments.iter().map(|s| s.trace.contributions_evaluated).sum()
    }

    /// Total quantized code cells the first-pass filter (or the
    /// approximate scan) swept across all segments; `0` for exact scans.
    pub fn quant_filter_cells(&self) -> u64 {
        self.segments.iter().map(|s| s.trace.filter_cells).sum()
    }

    /// Total rows that survived the quantized filter into the exact phase
    /// across all segments; `0` when no filter ran.
    pub fn quant_refine_rows(&self) -> u64 {
        self.segments.iter().map(|s| s.trace.refine_rows).sum()
    }

    /// Fraction of filtered rows the quantized first pass let through to
    /// exact refinement, or `None` when no filter ran. Lower is better —
    /// it is the lever behind the cost model's quantized estimates.
    pub fn quant_filter_selectivity(&self) -> Option<f64> {
        let swept: u64 = self
            .segments
            .iter()
            .filter(|s| s.trace.filter_cells > 0)
            .map(|s| s.rows.len() as u64)
            .sum();
        (swept > 0).then(|| self.quant_refine_rows() as f64 / swept as f64)
    }

    /// Fraction of the naive `rows × dims` work actually performed.
    pub fn work_fraction(&self, rows: usize, dims: usize) -> f64 {
        if rows == 0 || dims == 0 {
            return 0.0;
        }
        self.contributions_evaluated() as f64 / (rows as f64 * dims as f64)
    }

    /// Total pruning attempts across all segments.
    pub fn pruning_attempts(&self) -> usize {
        self.segments.iter().map(|s| s.trace.pruning_attempts).sum()
    }

    /// Number of segments the engine skipped outright via their zone-map
    /// envelope bound (adaptive planning only; skipped segments report zero
    /// contributions and zero dimensions accessed).
    pub fn segments_skipped(&self) -> usize {
        self.segments.iter().filter(|s| s.trace.segment_skipped).count()
    }
}

/// The answers to a whole batch, in request submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One outcome per request.
    pub queries: Vec<QueryOutcome>,
}

impl BatchOutcome {
    /// Total contribution evaluations over the whole batch.
    pub fn contributions_evaluated(&self) -> u64 {
        self.queries.iter().map(|q| q.contributions_evaluated()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_carries_overrides() {
        let plain = QuerySpec::new(vec![0.1, 0.9], 5);
        assert_eq!(plain.vector(), &[0.1, 0.9]);
        assert_eq!(plain.k(), 5);
        assert_eq!(plain.kind(), &QueryKind::TopK);
        assert_eq!(plain.rule_override(), None);
        assert_eq!(plain.planner_override(), None);
        assert_eq!(plain.priority_override(), None);
        assert!(plain.filter_override().is_none());

        let spec = QuerySpec::new(vec![0.5, 0.5], 3)
            .rule(RuleKind::EuclideanEq)
            .planner(PlannerKind::Adaptive)
            .priority(Priority::Batch)
            .filter(Bitmap::from_rows(4, &[0, 2]));
        assert_eq!(spec.rule_override(), Some(&RuleKind::EuclideanEq));
        assert_eq!(spec.planner_override(), Some(PlannerKind::Adaptive));
        assert_eq!(spec.priority_override(), Some(Priority::Batch));
        assert_eq!(spec.filter_override().unwrap().count(), 2);
        // sharing a pushed-down predicate across specs clones no bitmap
        let shared = Arc::new(Bitmap::from_rows(4, &[1]));
        let a = QuerySpec::new(vec![0.5, 0.5], 1).filter_shared(shared.clone());
        let b = QuerySpec::new(vec![0.1, 0.1], 1).filter_shared(shared.clone());
        assert!(Arc::ptr_eq(a.filter_override().unwrap(), b.filter_override().unwrap()));
    }

    #[test]
    fn multi_feature_specs_are_plain_data() {
        let table = Arc::new(
            DecomposedTable::from_vectors("tex", &[vec![0.5, 0.5], vec![0.2, 0.8]]).unwrap(),
        );
        let mf = MultiFeatureSpec::new(
            vec![
                FeatureSpec::new(vec![0.6, 0.4], FeatureMetricKind::HistogramIntersection),
                FeatureSpec::external(vec![0.5, 0.5], FeatureMetricKind::Euclidean, table.clone()),
            ],
            AggregateSpec::WeightedAverage(vec![0.7, 0.3]),
        );
        assert_eq!(mf.features().len(), 2);
        assert_eq!(mf.features()[0].metric(), FeatureMetricKind::HistogramIntersection);
        assert!(mf.features()[0].table().is_none());
        assert!(Arc::ptr_eq(mf.features()[1].table().unwrap(), &table));
        assert_eq!(mf.aggregate().label(), "weighted_average");

        let spec = QuerySpec::multi_feature(mf.clone(), 3);
        assert_eq!(spec.k(), 3);
        assert!(spec.vector().is_empty());
        assert_eq!(spec.kind(), &QueryKind::MultiFeature(mf));
        // feature equality is collection *identity*, not data equality
        let same_data = Arc::new(
            DecomposedTable::from_vectors("tex", &[vec![0.5, 0.5], vec![0.2, 0.8]]).unwrap(),
        );
        let a = FeatureSpec::external(vec![0.5], FeatureMetricKind::Euclidean, table.clone());
        let b = FeatureSpec::external(vec![0.5], FeatureMetricKind::Euclidean, same_data);
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn aggregate_specs_validate_and_build() {
        let avg = AggregateSpec::WeightedAverage(vec![3.0, 1.0]);
        avg.validate(2).unwrap();
        assert!(avg.validate(3).is_err());
        assert!(AggregateSpec::WeightedAverage(vec![-1.0, 1.0]).validate(2).is_err());
        assert!(AggregateSpec::WeightedAverage(vec![0.0, 0.0]).build().is_err());
        let built = avg.build().unwrap();
        assert!((built.combine(&[1.0, 0.0]) - 0.75).abs() < 1e-12);
        AggregateSpec::FuzzyMin.validate(5).unwrap();
        assert_eq!(AggregateSpec::FuzzyMin.build().unwrap().combine(&[0.9, 0.2]), 0.2);
        assert_eq!(AggregateSpec::FuzzyMax.build().unwrap().combine(&[0.9, 0.2]), 0.9);
        assert_eq!(AggregateSpec::FuzzyMin.label(), "fuzzy_min");
        assert_eq!(AggregateSpec::FuzzyMax.label(), "fuzzy_max");
    }

    #[test]
    fn priority_admission_order() {
        assert_eq!(Priority::default(), Priority::Normal);
        let indices: Vec<usize> = Priority::ALL.iter().map(|p| p.index()).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert!(Priority::Interactive < Priority::Normal);
        assert!(Priority::Normal < Priority::Batch);
    }

    #[test]
    fn batch_construction_and_accessors() {
        let mut b = RequestBatch::new();
        assert!(b.is_empty());
        assert_eq!(b, RequestBatch::default());
        b.push(QuerySpec::new(vec![0.1, 0.9], 5)).push(QuerySpec::new(vec![0.5, 0.5], 2));
        assert_eq!(b.len(), 2);
        assert_eq!(b.specs()[1].k(), 2);

        let single = RequestBatch::single(QuerySpec::new(vec![1.0], 1));
        assert_eq!(single.len(), 1);

        let homogeneous = RequestBatch::from_queries(vec![vec![1.0], vec![2.0]], 3);
        assert_eq!(homogeneous.len(), 2);
        assert!(homogeneous.specs().iter().all(|s| s.k() == 3 && s.rule_override().is_none()));

        let collected: RequestBatch =
            (0..4).map(|i| QuerySpec::new(vec![i as f64], i + 1)).collect();
        assert_eq!(collected.len(), 4);
        let ks: Vec<usize> = collected.into_iter().map(|s| s.k()).collect();
        assert_eq!(ks, vec![1, 2, 3, 4]);
    }

    #[test]
    fn outcome_aggregates_sum_over_segments() {
        let outcome = QueryOutcome {
            hits: vec![],
            error_bounds: None,
            segments: vec![
                SegmentRun {
                    rows: 0..50,
                    trace: PruneTrace {
                        contributions_evaluated: 100,
                        pruning_attempts: 2,
                        filter_cells: 200,
                        refine_rows: 10,
                        ..PruneTrace::default()
                    },
                    plan: None,
                },
                SegmentRun {
                    rows: 50..100,
                    trace: PruneTrace {
                        contributions_evaluated: 60,
                        pruning_attempts: 1,
                        filter_cells: 200,
                        refine_rows: 15,
                        ..PruneTrace::default()
                    },
                    plan: None,
                },
            ],
        };
        assert_eq!(outcome.contributions_evaluated(), 160);
        assert_eq!(outcome.pruning_attempts(), 3);
        assert_eq!(outcome.segments_skipped(), 0);
        assert_eq!(outcome.quant_filter_cells(), 400);
        assert_eq!(outcome.quant_refine_rows(), 25);
        assert_eq!(outcome.quant_filter_selectivity(), Some(0.25));
        assert!((outcome.work_fraction(100, 4) - 0.4).abs() < 1e-12);
        assert_eq!(outcome.work_fraction(0, 4), 0.0);
        let batch = BatchOutcome { queries: vec![outcome.clone(), outcome] };
        assert_eq!(batch.contributions_evaluated(), 320);
    }

    #[test]
    fn exact_outcomes_report_no_filter_phase() {
        let outcome = QueryOutcome {
            hits: vec![],
            error_bounds: None,
            segments: vec![SegmentRun {
                rows: 0..10,
                trace: PruneTrace { contributions_evaluated: 40, ..PruneTrace::default() },
                plan: None,
            }],
        };
        assert_eq!(outcome.quant_filter_cells(), 0);
        assert_eq!(outcome.quant_filter_selectivity(), None);
    }

    #[test]
    fn scan_mode_classification_and_labels() {
        assert_eq!(ScanMode::default(), ScanMode::Exact);
        assert!(!ScanMode::Exact.uses_codes());
        assert!(ScanMode::QuantizedFilter.uses_codes());
        assert!(ScanMode::ApproximateQuantized { bits: 6 }.uses_codes());
        assert!(!ScanMode::QuantizedFilter.is_approximate());
        assert!(ScanMode::ApproximateQuantized { bits: 6 }.is_approximate());
        assert_eq!(ScanMode::ApproximateQuantized { bits: 6 }.bits(), 6);
        assert_eq!(ScanMode::QuantizedFilter.bits(), 8);
        assert_eq!(ScanMode::Exact.label(), "exact");
        assert_eq!(ScanMode::QuantizedFilter.label(), "quantized-filter");
        assert_eq!(ScanMode::ApproximateQuantized { bits: 4 }.label(), "approximate-quantized");

        let spec = QuerySpec::new(vec![0.5], 1).scan_mode(ScanMode::QuantizedFilter);
        assert_eq!(spec.scan_mode_override(), Some(ScanMode::QuantizedFilter));
        assert_eq!(QuerySpec::new(vec![0.5], 1).scan_mode_override(), None);
    }
}
