//! # bond-exec — a parallel, partitioned, batched query-execution engine
//!
//! The core crate reproduces the paper's algorithm: one query, one thread,
//! one pass over the fragments. This crate turns it into a *serving
//! engine*:
//!
//! * **An owned, shareable engine** — [`Engine`] owns its table behind an
//!   `Arc`, stores partition boundaries as lifetime-free
//!   [`vdstore::SegmentSpec`]s with cached [`vdstore::SegmentStats`], and
//!   materialises the zero-copy [`vdstore::Segment`] views per call. It is
//!   `Send + Sync + 'static` and clones in O(1), so it can live in a
//!   server struct and serve concurrent request threads for the life of
//!   the process.
//! * **Horizontal partitioning** — the table is split into contiguous
//!   row-range segments; BOND's per-fragment partial scores depend only on
//!   a candidate's own coefficients, so segments are independently
//!   scannable units, exactly like the independent searchers of
//!   parallel-ensemble k-NN designs.
//! * **Parallel BOND with κ sharing** — every segment runs the unmodified
//!   pruning rules, but publishes its κ (the k-th best safe bound) into one
//!   atomic [`SharedKappa`] cell per query. A tight bound found in one
//!   segment immediately prunes candidates in all others, recovering most
//!   of the pruning power a single full-table search has — the split is
//!   *not* embarrassingly parallel, it is cooperative branch-and-bound.
//! * **Heterogeneous batched execution** — a [`RequestBatch`] of
//!   [`QuerySpec`]s schedules all `queries × segments` work items on one
//!   worker pool. Every spec carries its own `k` and may override the
//!   engine's pruning rule and planner, so mixed workloads (navigation
//!   steps next to weighted re-ranking jobs) execute in a single pass;
//!   per-query setup (dimension ordering, the Ev rule's `T(x)` table,
//!   thread spawn) is amortized across the batch, and every query still
//!   reports per-segment [`bond::PruneTrace`]s.
//! * **Exactness** — each segment refines its survivors to exact scores in
//!   the *same* dimension order the sequential searcher uses; since the k
//!   best rows under the total `(score, row id)` order are unique, the
//!   merged answer is bit-identical to [`bond::BondSearcher`]'s.
//! * **Per-segment adaptive plans** — under [`PlannerKind::Adaptive`]
//!   (engine-wide or per query) every segment gets its own
//!   [`bond::SegmentPlan`] (dimension order + block schedule) derived from
//!   its cached statistics, and segments whose zone-map envelope bound
//!   provably cannot reach the query's current κ are skipped without
//!   touching their columns. The merge then re-verifies exact scores and
//!   tie-breaks on row ids: rank-correct answers — the sequential
//!   reference's k-NN set and ranks, up to ties between distinct rows
//!   whose exact scores differ by less than floating-point summation
//!   drift.
//! * **Feedback-driven planning** — the engine owns a lock-free
//!   [`bond::ExecFeedback`] store into which every query's pruning trace,
//!   zone-map skip and merge miss folds; [`PlannerKind::Feedback`] plans
//!   from the shared [`bond::CostModel`], re-ranking each segment's scan
//!   order toward dimensions that *observably pruned* and shrinking
//!   warmups toward observed first-effective-prune depths (cold segments
//!   plan exactly like `Adaptive`). [`Engine::feedback_snapshot`] exposes
//!   the learned state; [`Engine::persist`] writes it alongside the store
//!   footer so a reopened engine starts warm; and
//!   [`Engine::estimate_cost`] turns the same signals into per-request
//!   cost estimates.
//! * **Cost-aware admission control** — [`service::Server`] prices every
//!   accepted [`QuerySpec`] with the cost model, queues it under its
//!   [`Priority`] class, drains Interactive → Normal → Batch with the
//!   cheapest estimate first, and cuts each coalesced batch once the
//!   summed estimates exceed the configured budget
//!   ([`service::ServerBuilder::max_cost`]). Rejected submissions are
//!   counted ([`service::Server::queries_rejected`]).
//! * **Weighted rules** — [`RuleKind::WeightedHistogram`] /
//!   [`RuleKind::WeightedEuclidean`] carry per-dimension weights through
//!   the same engine: weighted orderings, the safe weighted bounds, and
//!   subspace queries (0/1 weights) all execute partitioned and batched.
//! * **Persistence & cold start** — [`Engine::persist`] writes the table,
//!   the partition boundaries and the cached per-segment statistics as a
//!   versioned segment store (`vdstore::persist`, format `BONDVD02`);
//!   [`EngineBuilder::open`] reopens it — in any process — into a fully
//!   validated engine whose `SegmentSpec`s, statistics and zone-map
//!   envelopes come straight from the store's footer. Under
//!   [`vdstore::StorageBackend::Mapped`] the column fragments are *viewed*
//!   through a read-only file mapping: adaptive planning and whole-segment
//!   skipping work before a single data page is faulted in, and collections
//!   larger than RAM stay servable.
//! * **Quantized first-pass scanning** — [`ScanMode::QuantizedFilter`]
//!   sweeps per-segment `u8` code columns ([`vdstore::StoreCodes`]) with
//!   the branch-free [`bond::quantfilter`] kernel before the exact search:
//!   only rows whose optimistic interval bound beats the query's current κ
//!   fall through to `f64` refinement, and the answers stay bit-identical
//!   to [`ScanMode::Exact`]. [`ScanMode::ApproximateQuantized`] answers
//!   from the codes alone and reports a per-hit error bound
//!   ([`batch::QueryOutcome::error_bounds`]). Codes persist in the store
//!   footer, so reopened engines filter without re-encoding, and observed
//!   filter selectivity feeds back into the cost model's estimates.
//! * **Predicate-filtered k-NN** — [`QuerySpec::filter`] pushes an
//!   eligible-row [`vdstore::Bitmap`] into every layer of the search: the
//!   exact scan, κ seeding, the quantized first pass and the zone-map
//!   segment-skip bounds all respect the filter; segments with zero
//!   eligible rows are skipped outright, [`Engine::estimate_cost`]
//!   discounts by per-segment selectivity, and a filter that empties the
//!   table is rejected at admission as
//!   [`bond::BondError::InvalidFilter`]. Filtered answers are
//!   bit-identical to a brute-force filter-then-scan.
//! * **Multi-feature combination queries** — a [`QuerySpec`] built with
//!   [`QuerySpec::multi_feature`] carries a [`MultiFeatureSpec`] (one
//!   [`FeatureSpec`] per feature plus an [`AggregateSpec`]) through the
//!   same partitioned engine: every segment runs
//!   [`bond::MultiFeatureSearcher`]'s synchronized scan, partial-score
//!   bounds merge under the shared κ protocol, and per-feature dimensions
//!   are validated up front ([`bond::BondError::FeatureDimensionMismatch`]).
//! * **Relational programs** — [`KnnProgram`] executes range selects
//!   through `bond-relalg`'s algebraic operators and pushes the combined
//!   candidate bitmap down into the k-NN operator as exactly the filter
//!   above, logging the MIL-style script it ran.
//! * **A serving front-end** — [`service::Server`] wraps a cloned engine
//!   in a submission queue: concurrent threads submit individual
//!   [`QuerySpec`]s, a worker coalesces them into engine batches, and
//!   answers route back through per-request tickets.
//! * **End-to-end observability** — every engine owns a
//!   [`bond_obs::MetricsRegistry`] (inject a shared one with
//!   [`EngineBuilder::metrics`]) into which the engine, planner, store
//!   and service layers emit counters, gauges and histograms under
//!   stable dotted names; stage-level [`bond_obs::Span`]s trace
//!   plan/scan/warmup/merge/persist/queue stages when enabled (a single
//!   relaxed load when not); and [`Engine::explain`] renders the exact
//!   per-segment plan a [`QuerySpec`] would run, which
//!   [`batch::QueryOutcome::analyze`] joins post-execution against the
//!   executed [`bond::PruneTrace`]s.
//!
//! ## Quick start
//!
//! ```
//! use bond_exec::{Engine, PlannerKind, QuerySpec, RequestBatch, RuleKind};
//! use vdstore::DecomposedTable;
//!
//! let vectors: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![i as f64 / 100.0, 1.0 - i as f64 / 100.0])
//!     .collect();
//! let table = DecomposedTable::from_vectors("demo", &vectors).unwrap();
//!
//! // the engine takes ownership of the table (Arc'd internally) …
//! let engine = Engine::builder(table)
//!     .partitions(4)
//!     .threads(2)
//!     .rule(RuleKind::EuclideanEq)
//!     .build()
//!     .unwrap();
//!
//! // … one query under the engine defaults …
//! let outcome = engine.search(&[0.25, 0.75], 3).unwrap();
//! assert_eq!(outcome.hits.len(), 3);
//! assert_eq!(outcome.hits[0].row, 25);
//!
//! // … or a heterogeneous batch: per-query k, rule and planner.
//! let batch = RequestBatch::from_specs(vec![
//!     QuerySpec::new(vec![0.1, 0.9], 5),
//!     QuerySpec::new(vec![0.9, 0.1], 1).rule(RuleKind::HistogramHq),
//!     QuerySpec::new(vec![0.5, 0.5], 2).planner(PlannerKind::Adaptive),
//! ]);
//! let answers = engine.execute(&batch).unwrap();
//! assert_eq!(answers.queries.len(), 3);
//! assert_eq!(answers.queries[1].hits.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod engine;
pub mod explain;
pub mod kappa;
pub mod planner;
pub mod relational;
pub mod rules;
pub mod service;

pub use batch::{
    AggregateSpec, BatchOutcome, FeatureSpec, MultiFeatureSpec, Priority, QueryKind, QueryOutcome,
    QuerySpec, RequestBatch, ScanMode, SegmentRun,
};
pub use bond::{CostModel, FeedbackSnapshot, SegmentFeedbackSnapshot};
pub use bond_obs::MetricsRegistry;
pub use engine::{Engine, EngineBuilder};
pub use explain::{PlanProvenance, QueryAnalysis, QueryExplain, SegmentAnalysis, SegmentExplain};
pub use kappa::SharedKappa;
pub use planner::{AdaptivePlanner, PlannerKind};
pub use relational::{KnnProgram, RelationalRun, SelectStep};
pub use rules::RuleKind;
pub use service::{Server, ServerBuilder, Ticket};

#[cfg(test)]
mod tests {
    use super::*;
    use bond::BondError;
    use vdstore::DecomposedTable;

    fn table(rows: usize, dims: usize) -> DecomposedTable {
        // deterministic, mildly skewed synthetic histograms
        let vectors: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                let mut v: Vec<f64> =
                    (0..dims).map(|d| ((r * 31 + d * 17) % 97) as f64 + 1.0).collect();
                let total: f64 = v.iter().sum();
                v.iter_mut().for_each(|x| *x /= total);
                v
            })
            .collect();
        DecomposedTable::from_vectors("t", &vectors).unwrap()
    }

    #[test]
    fn engine_is_send_sync_static_and_cheaply_clonable() {
        fn assert_send_sync_static<T: Send + Sync + 'static>() {}
        assert_send_sync_static::<Engine>();
        assert_send_sync_static::<Server>();
        assert_send_sync_static::<QuerySpec>();
        assert_send_sync_static::<RequestBatch>();

        // an engine outlives the stack frame its table was built in, and a
        // clone can be moved into a spawned (non-scoped) thread
        let engine = {
            let t = table(100, 4);
            Engine::builder(t).partitions(2).threads(1).build().unwrap()
        };
        let q = engine.table().row(10).unwrap();
        let clone = engine.clone();
        let hits = std::thread::spawn(move || clone.search(&q, 3).unwrap().hits).join().unwrap();
        let q = engine.table().row(10).unwrap();
        assert_eq!(hits, engine.search(&q, 3).unwrap().hits);
    }

    #[test]
    fn engine_matches_sequential_for_every_rule() {
        let table = table(500, 16);
        let query = table.row(123).unwrap();
        for rule in RuleKind::ALL {
            let engine = Engine::builder(table.clone())
                .partitions(4)
                .threads(3)
                .rule(rule.clone())
                .build()
                .unwrap();
            let parallel = engine.search(&query, 10).unwrap();
            let sequential = engine.sequential_reference(&query, 10).unwrap();
            assert_eq!(parallel.hits, sequential, "rule {}", rule.name());
        }
    }

    #[test]
    fn batch_answers_match_single_queries() {
        let table = table(300, 8);
        let engine = Engine::builder(table).partitions(3).threads(2).build().unwrap();
        let queries: Vec<Vec<f64>> = (0..5).map(|i| engine.table().row(i * 37).unwrap()).collect();
        let batch = RequestBatch::from_queries(queries.clone(), 7);
        let outcome = engine.execute(&batch).unwrap();
        assert_eq!(outcome.queries.len(), 5);
        for (q, merged) in queries.iter().zip(&outcome.queries) {
            let single = engine.search(q, 7).unwrap();
            assert_eq!(single.hits, merged.hits);
            assert_eq!(merged.segments.len(), engine.partitions());
        }
    }

    #[test]
    fn mixed_k_mixed_rule_batches_answer_each_spec_on_its_own_terms() {
        let table = table(400, 8);
        let engine = Engine::builder(table)
            .partitions(3)
            .threads(2)
            .rule(RuleKind::HistogramHh)
            .build()
            .unwrap();
        let specs = vec![
            QuerySpec::new(engine.table().row(11).unwrap(), 1),
            QuerySpec::new(engine.table().row(42).unwrap(), 9).rule(RuleKind::EuclideanEv),
            QuerySpec::new(engine.table().row(99).unwrap(), 4)
                .rule(RuleKind::EuclideanEq)
                .planner(PlannerKind::Adaptive),
            QuerySpec::new(engine.table().row(7).unwrap(), 17).rule(
                RuleKind::weighted_euclidean(vec![1.0, 2.0, 0.0, 1.0, 4.0, 1.0, 1.0, 0.5]).unwrap(),
            ),
        ];
        let outcome = engine.execute(&RequestBatch::from_specs(specs.clone())).unwrap();
        assert_eq!(outcome.queries.len(), specs.len());
        for (spec, merged) in specs.iter().zip(&outcome.queries) {
            assert_eq!(merged.hits.len(), spec.k(), "each spec gets its own k");
            assert_eq!(merged.hits, engine.search_spec(spec).unwrap().hits);
        }
    }

    #[test]
    fn tombstoned_rows_never_surface() {
        let mut t = table(200, 8);
        let query = t.row(50).unwrap();
        t.delete(50).unwrap(); // the best possible match is deleted
        let engine = Engine::builder(t).partitions(4).threads(2).build().unwrap();
        let outcome = engine.search(&query, 5).unwrap();
        assert_eq!(outcome.hits.len(), 5);
        assert!(outcome.hits.iter().all(|h| h.row != 50));
    }

    #[test]
    fn validation_matches_the_sequential_searcher() {
        let t = table(50, 4);
        let engine = Engine::builder(t.clone()).partitions(2).threads(1).build().unwrap();
        assert!(matches!(
            engine.search(&[0.5; 3], 1),
            Err(BondError::QueryDimensionMismatch { .. })
        ));
        let q = t.row(0).unwrap();
        assert!(matches!(engine.search(&q, 0), Err(BondError::InvalidK { .. })));
        assert!(matches!(engine.search(&q, 51), Err(BondError::InvalidK { .. })));
        // empty batch is fine
        let empty = engine.execute(&RequestBatch::new()).unwrap();
        assert!(empty.queries.is_empty());
        // per-spec rule overrides are validated before any work starts
        let bad = QuerySpec::new(q.clone(), 1).rule(RuleKind::WeightedEuclidean(vec![-1.0; 4]));
        assert!(matches!(engine.search_spec(&bad), Err(BondError::InvalidParams(_))));
        let short = QuerySpec::new(q.clone(), 1).rule(RuleKind::WeightedEuclidean(vec![1.0; 3]));
        assert!(matches!(
            engine.search_spec(&short),
            Err(BondError::WeightDimensionMismatch { .. })
        ));
        // one bad spec fails the whole batch up front
        let batch = RequestBatch::from_specs(vec![QuerySpec::new(q, 1), short]);
        assert!(engine.execute(&batch).is_err());
    }

    #[test]
    fn build_rejects_zero_partitions_and_threads() {
        let t = table(20, 4);
        assert!(matches!(
            Engine::builder(t.clone()).partitions(0).build(),
            Err(BondError::InvalidParams(_))
        ));
        assert!(matches!(
            Engine::builder(t.clone()).threads(0).build(),
            Err(BondError::InvalidParams(_))
        ));
        // a descriptive message, not a silent clamp
        let msg = match Engine::builder(t).partitions(0).build() {
            Err(BondError::InvalidParams(msg)) => msg,
            other => panic!("expected InvalidParams, got {other:?}"),
        };
        assert!(msg.contains("partitions"));
    }

    #[test]
    fn build_rejects_invalid_default_rules() {
        let t = table(50, 4);
        // directly constructed invalid weights error at build, not mid-search
        assert!(matches!(
            Engine::builder(t.clone()).rule(RuleKind::WeightedEuclidean(vec![-1.0; 4])).build(),
            Err(BondError::InvalidParams(_))
        ));
        assert!(matches!(
            Engine::builder(t).rule(RuleKind::WeightedEuclidean(vec![1.0; 3])).build(),
            Err(BondError::WeightDimensionMismatch { .. })
        ));
    }

    #[test]
    fn more_partitions_than_rows_degrades_gracefully() {
        let t = table(5, 4);
        let engine = Engine::builder(t).partitions(64).threads(8).build().unwrap();
        assert!(engine.partitions() <= 5);
        let q = engine.table().row(2).unwrap();
        let outcome = engine.search(&q, 5).unwrap();
        assert_eq!(outcome.hits.len(), 5);
        assert_eq!(outcome.hits[0].row, 2);
    }

    #[test]
    fn kappa_sharing_reduces_work_without_changing_answers() {
        let table = table(2000, 24);
        let query = table.row(7).unwrap();
        let shared = Engine::builder(table.clone())
            .partitions(4)
            .threads(1) // deterministic interleaving for a fair work count
            .rule(RuleKind::HistogramHh)
            .build()
            .unwrap();
        let isolated = Engine::builder(table)
            .partitions(4)
            .threads(1)
            .rule(RuleKind::HistogramHh)
            .share_kappa(false)
            .build()
            .unwrap();
        let with = shared.search(&query, 5).unwrap();
        let without = isolated.search(&query, 5).unwrap();
        assert_eq!(with.hits, without.hits);
        assert!(
            with.contributions_evaluated() <= without.contributions_evaluated(),
            "κ sharing must never increase the scanned work: {} vs {}",
            with.contributions_evaluated(),
            without.contributions_evaluated()
        );
    }

    #[test]
    fn segment_stats_expose_per_partition_distributions() {
        let t = table(100, 6);
        let engine = Engine::builder(t).partitions(4).threads(1).build().unwrap();
        let stats = engine.segment_stats();
        assert_eq!(stats.len(), engine.partitions());
        assert_eq!(stats.len(), engine.segment_specs().len());
        assert!(stats.iter().all(|s| s.per_dim.len() == 6));
        // segments tile the table
        assert_eq!(stats.first().unwrap().range.start, 0);
        assert_eq!(stats.last().unwrap().range.end, 100);
        // specs and stats agree on the boundaries
        for (spec, stat) in engine.segment_specs().iter().zip(stats) {
            assert_eq!(spec.range(), stat.range);
        }
    }
}
