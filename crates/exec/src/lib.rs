//! # bond-exec — a parallel, partitioned, batched query-execution engine
//!
//! The core crate reproduces the paper's algorithm: one query, one thread,
//! one pass over the fragments. This crate turns it into a *serving
//! engine*:
//!
//! * **Horizontal partitioning** — the table is split into contiguous
//!   row-range [`vdstore::Segment`]s (zero-copy column-slice views); BOND's
//!   per-fragment partial scores depend only on a candidate's own
//!   coefficients, so segments are independently scannable units, exactly
//!   like the independent searchers of parallel-ensemble k-NN designs.
//! * **Parallel BOND with κ sharing** — every segment runs the unmodified
//!   pruning rules, but publishes its κ (the k-th best safe bound) into one
//!   atomic [`SharedKappa`] cell per query. A tight bound found in one
//!   segment immediately prunes candidates in all others, recovering most
//!   of the pruning power a single full-table search has — the split is
//!   *not* embarrassingly parallel, it is cooperative branch-and-bound.
//! * **Batched execution** — a [`QueryBatch`] schedules all
//!   `queries × segments` work items on one worker pool and amortizes
//!   per-query setup (dimension ordering, the Ev rule's `T(x)` table,
//!   thread spawn) across the batch. Every query still reports per-segment
//!   [`bond::PruneTrace`]s, so the paper's instrumentation survives.
//! * **Exactness** — each segment refines its survivors to exact scores in
//!   the *same* dimension order the sequential searcher uses; since the k
//!   best rows under the total `(score, row id)` order are unique, the
//!   merged answer is bit-identical to [`bond::BondSearcher`]'s.
//! * **Per-segment adaptive plans** — with
//!   [`EngineBuilder::planner`]`(`[`PlannerKind::Adaptive`]`)` every
//!   segment gets its own [`bond::SegmentPlan`] (dimension order + block
//!   schedule) derived from its cached [`vdstore::SegmentStats`], and
//!   segments whose zone-map envelope bound provably cannot reach the
//!   query's current κ are skipped without touching their columns. The
//!   merge then re-verifies exact scores and tie-breaks on row ids:
//!   rank-correct answers — the sequential reference's k-NN set and ranks,
//!   up to ties between distinct rows whose exact scores differ by less
//!   than floating-point summation drift.
//! * **Weighted rules** — [`RuleKind::WeightedHistogram`] /
//!   [`RuleKind::WeightedEuclidean`] carry per-dimension weights through
//!   the same engine: weighted orderings, the safe weighted bounds, and
//!   subspace queries (0/1 weights) all execute partitioned and batched.
//!
//! ## Quick start
//!
//! ```
//! use bond_exec::{Engine, QueryBatch, RuleKind};
//! use vdstore::DecomposedTable;
//!
//! let vectors: Vec<Vec<f64>> = (0..100)
//!     .map(|i| vec![i as f64 / 100.0, 1.0 - i as f64 / 100.0])
//!     .collect();
//! let table = DecomposedTable::from_vectors("demo", &vectors).unwrap();
//!
//! let engine = Engine::builder(&table)
//!     .partitions(4)
//!     .threads(2)
//!     .rule(RuleKind::EuclideanEq)
//!     .build();
//!
//! // one query …
//! let outcome = engine.search(&[0.25, 0.75], 3).unwrap();
//! assert_eq!(outcome.hits.len(), 3);
//! assert_eq!(outcome.hits[0].row, 25);
//!
//! // … or a whole batch, answered together
//! let batch = QueryBatch::from_queries(
//!     vec![vec![0.1, 0.9], vec![0.9, 0.1]],
//!     5,
//! );
//! let answers = engine.execute(&batch).unwrap();
//! assert_eq!(answers.queries.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod engine;
pub mod kappa;
pub mod planner;
pub mod rules;

pub use batch::{BatchOutcome, QueryBatch, QueryOutcome, SegmentRun};
pub use engine::{Engine, EngineBuilder};
pub use kappa::SharedKappa;
pub use planner::{AdaptivePlanner, PlannerKind};
pub use rules::RuleKind;

#[cfg(test)]
mod tests {
    use super::*;
    use bond::BondError;
    use vdstore::DecomposedTable;

    fn table(rows: usize, dims: usize) -> DecomposedTable {
        // deterministic, mildly skewed synthetic histograms
        let vectors: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                let mut v: Vec<f64> =
                    (0..dims).map(|d| ((r * 31 + d * 17) % 97) as f64 + 1.0).collect();
                let total: f64 = v.iter().sum();
                v.iter_mut().for_each(|x| *x /= total);
                v
            })
            .collect();
        DecomposedTable::from_vectors("t", &vectors).unwrap()
    }

    #[test]
    fn engine_matches_sequential_for_every_rule() {
        let table = table(500, 16);
        let query = table.row(123).unwrap();
        for rule in RuleKind::ALL {
            let engine =
                Engine::builder(&table).partitions(4).threads(3).rule(rule.clone()).build();
            let parallel = engine.search(&query, 10).unwrap();
            let sequential = engine.sequential_reference(&query, 10).unwrap();
            assert_eq!(parallel.hits, sequential, "rule {}", rule.name());
        }
    }

    #[test]
    fn batch_answers_match_single_queries() {
        let table = table(300, 8);
        let engine = Engine::builder(&table).partitions(3).threads(2).build();
        let queries: Vec<Vec<f64>> = (0..5).map(|i| table.row(i * 37).unwrap()).collect();
        let batch = QueryBatch::from_queries(queries.clone(), 7);
        let outcome = engine.execute(&batch).unwrap();
        assert_eq!(outcome.queries.len(), 5);
        for (q, merged) in queries.iter().zip(&outcome.queries) {
            let single = engine.search(q, 7).unwrap();
            assert_eq!(single.hits, merged.hits);
            assert_eq!(merged.segments.len(), engine.partitions());
        }
    }

    #[test]
    fn tombstoned_rows_never_surface() {
        let mut t = table(200, 8);
        let query = t.row(50).unwrap();
        t.delete(50).unwrap(); // the best possible match is deleted
        let engine = Engine::builder(&t).partitions(4).threads(2).build();
        let outcome = engine.search(&query, 5).unwrap();
        assert_eq!(outcome.hits.len(), 5);
        assert!(outcome.hits.iter().all(|h| h.row != 50));
    }

    #[test]
    fn validation_matches_the_sequential_searcher() {
        let t = table(50, 4);
        let engine = Engine::builder(&t).partitions(2).build();
        assert!(matches!(
            engine.search(&[0.5; 3], 1),
            Err(BondError::QueryDimensionMismatch { .. })
        ));
        let q = t.row(0).unwrap();
        assert!(matches!(engine.search(&q, 0), Err(BondError::InvalidK { .. })));
        assert!(matches!(engine.search(&q, 51), Err(BondError::InvalidK { .. })));
        // empty batch is fine
        let empty = engine.execute(&QueryBatch::new(3)).unwrap();
        assert!(empty.queries.is_empty());
        // directly constructed invalid weights error instead of panicking
        let bad = Engine::builder(&t).rule(RuleKind::WeightedEuclidean(vec![-1.0; 4])).build();
        assert!(matches!(bad.search(&q, 1), Err(BondError::InvalidParams(_))));
        let short = Engine::builder(&t).rule(RuleKind::WeightedEuclidean(vec![1.0; 3])).build();
        assert!(matches!(short.search(&q, 1), Err(BondError::WeightDimensionMismatch { .. })));
    }

    #[test]
    fn more_partitions_than_rows_degrades_gracefully() {
        let t = table(5, 4);
        let engine = Engine::builder(&t).partitions(64).threads(8).build();
        assert!(engine.partitions() <= 5);
        let q = t.row(2).unwrap();
        let outcome = engine.search(&q, 5).unwrap();
        assert_eq!(outcome.hits.len(), 5);
        assert_eq!(outcome.hits[0].row, 2);
    }

    #[test]
    fn kappa_sharing_reduces_work_without_changing_answers() {
        let table = table(2000, 24);
        let query = table.row(7).unwrap();
        let shared = Engine::builder(&table)
            .partitions(4)
            .threads(1) // deterministic interleaving for a fair work count
            .rule(RuleKind::HistogramHh)
            .build();
        let isolated = Engine::builder(&table)
            .partitions(4)
            .threads(1)
            .rule(RuleKind::HistogramHh)
            .share_kappa(false)
            .build();
        let with = shared.search(&query, 5).unwrap();
        let without = isolated.search(&query, 5).unwrap();
        assert_eq!(with.hits, without.hits);
        assert!(
            with.contributions_evaluated() <= without.contributions_evaluated(),
            "κ sharing must never increase the scanned work: {} vs {}",
            with.contributions_evaluated(),
            without.contributions_evaluated()
        );
    }

    #[test]
    fn segment_stats_expose_per_partition_distributions() {
        let t = table(100, 6);
        let engine = Engine::builder(&t).partitions(4).build();
        let stats = engine.segment_stats();
        assert_eq!(stats.len(), engine.partitions());
        assert!(stats.iter().all(|s| s.per_dim.len() == 6));
        // segments tile the table
        assert_eq!(stats.first().unwrap().range.start, 0);
        assert_eq!(stats.last().unwrap().range.end, 100);
    }
}
