//! Query EXPLAIN and ANALYZE: render the plan, then audit the execution.
//!
//! [`Engine::explain`] answers *"what would the engine do for this
//! request?"* without executing anything: for every segment it renders the
//! derived [`SegmentPlan`] (dimension order and warmup schedule), where in
//! the visit order the segment runs, its zone-map envelope bound toward
//! the query, the cost model's cell estimate and the plan's *provenance*
//! (uniform params, a-priori statistics, or cold/warm feedback).
//!
//! [`QueryOutcome::analyze`] answers *"what did the engine actually do?"*
//! by joining the rendered plan against the executed [`bond::PruneTrace`]s:
//! cells scanned vs estimated, the depth at which pruning reached the
//! query's `k`, which segments were skipped, and whether the executed plan
//! matched the rendered one (it does by construction — both sides call the
//! same derivation path — unless feedback advanced between the two calls).
//!
//! Both types are plain data with `Display` impls, so they print as
//! compact reports and remain programmatically inspectable.

use crate::batch::{MultiFeatureSpec, QueryKind, QueryOutcome, QuerySpec, ScanMode};
use crate::engine::Engine;
use crate::planner::PlannerKind;
use bond::{FeatureMetricKind, Kernel, Result, SegmentPlan};
use std::fmt;
use std::ops::Range;

/// Where a segment's plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanProvenance {
    /// The engine's uniform params — every segment shares one plan.
    Uniform,
    /// Derived from the segment's a-priori statistics (adaptive planning,
    /// or feedback planning before any signal accumulated uses the same
    /// derivation — see [`PlanProvenance::FeedbackCold`]).
    Apriori,
    /// Feedback planning on a *cold* segment: too few folded searches, so
    /// the plan equals the a-priori plan bit for bit.
    FeedbackCold,
    /// Feedback planning on a *warm* segment: the dimension order is
    /// re-ranked by observed prune credit and the warmup shrinks toward
    /// the observed first-effective-prune depth.
    FeedbackWarm,
}

impl PlanProvenance {
    /// A short lowercase label (`"uniform"`, `"apriori"`,
    /// `"feedback-cold"`, `"feedback-warm"`).
    pub fn label(self) -> &'static str {
        match self {
            PlanProvenance::Uniform => "uniform",
            PlanProvenance::Apriori => "apriori",
            PlanProvenance::FeedbackCold => "feedback-cold",
            PlanProvenance::FeedbackWarm => "feedback-warm",
        }
    }
}

/// One feature component of a multi-feature plan, as rendered by
/// [`Engine::explain`].
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureExplain {
    /// The feature's position in the aggregate's argument order.
    pub feature: usize,
    /// The feature collection's dimensionality.
    pub dims: usize,
    /// The metric's label (`"histogram-intersection"` or `"euclidean"`).
    pub metric: &'static str,
    /// Whether the feature runs against a sibling collection rather than
    /// the engine's own table.
    pub external: bool,
}

/// The rendered plan for one segment of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentExplain {
    /// The segment index, in row-range order.
    pub segment: usize,
    /// The table rows the segment covers.
    pub rows: Range<usize>,
    /// Position in the query's visit order at which this segment executes
    /// (feedback planning visits most-promising-first; everyone else in
    /// row order).
    pub visit_position: usize,
    /// The fully derived plan: dimension order plus block schedule.
    pub plan: SegmentPlan,
    /// Where the plan came from.
    pub provenance: PlanProvenance,
    /// The segment's optimistic zone-map bound toward the query — the
    /// score the skip check compares against κ at run time. `None` for a
    /// segment with no envelope.
    pub envelope_bound: Option<f64>,
    /// The cost model's estimate of the `(candidate, dimension)` cells one
    /// search of this segment will evaluate, in exact-cell equivalents
    /// (for quantized scans: the filter and refine phases summed).
    pub estimated_cells: f64,
    /// The quantized filter sweep's share of `estimated_cells` (code cells
    /// priced at [`bond::CostModel::quant_cell_cost`] each, for the kernel
    /// this process dispatches to); `None` for exact scans.
    pub filter_cost: Option<f64>,
    /// The code bit-width the quantized sweep of this segment would use:
    /// the adaptive policy's pick for filter scans, the requested uniform
    /// width for approximate scans, `None` for exact scans.
    pub code_bits: Option<u8>,
    /// The exact refine phase's share of `estimated_cells`: the cells the
    /// cost model expects the filter's survivors to need. `Some(0.0)` for
    /// approximate codes-only scans, `None` for exact scans.
    pub refine_cost: Option<f64>,
    /// Live rows eligible under the request's predicate filter; `None`
    /// when the request carries no filter.
    pub eligible_rows: Option<usize>,
    /// The segment's live-row count (the filter's denominator).
    pub live_rows: usize,
}

impl SegmentExplain {
    /// The filter's selectivity in this segment — eligible over live rows,
    /// in `[0, 1]`. `None` when the request carries no filter.
    pub fn filter_selectivity(&self) -> Option<f64> {
        self.eligible_rows.map(|e| e as f64 / (self.live_rows.max(1)) as f64)
    }
}

/// The rendered execution plan of one request — what [`Engine::execute`]
/// *would* do, derived without executing anything.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExplain {
    /// The number of neighbours requested.
    pub k: usize,
    /// The effective pruning rule's name (`"Hq"`, `"Ev"`, …).
    pub rule: &'static str,
    /// The effective planning policy.
    pub planner: PlannerKind,
    /// The effective scan mode (exact, quantized filter, or approximate).
    pub scan: ScanMode,
    /// The table dimensionality.
    pub dims: usize,
    /// Whether κ-aware whole-segment skipping is armed for this request
    /// (stats-driven planner and shared κ).
    pub skipping: bool,
    /// The scan-kernel flavour this process dispatches hot loops to
    /// (`"scalar"`, `"avx2"`, `"neon"`) — process-wide, shown once.
    pub kernel: &'static str,
    /// The segment visit order: position `p` executes
    /// `visit_order[p]`.
    pub visit_order: Vec<usize>,
    /// Per-segment rendered plans, in segment (row-range) order.
    pub segments: Vec<SegmentExplain>,
    /// The feature components of a multi-feature request, in aggregate
    /// order; empty for classic top-k requests.
    pub features: Vec<FeatureExplain>,
    /// The combining aggregate's label for a multi-feature request.
    pub aggregate: Option<&'static str>,
    /// Live rows eligible under the request's predicate filter, summed
    /// over all segments; `None` when the request carries no filter.
    pub eligible_rows: Option<usize>,
}

impl QueryExplain {
    /// Total estimated `(candidate, dimension)` cells across all segments
    /// — the same figure [`Engine::estimate_cost`] prices admission with.
    pub fn estimated_cells(&self) -> f64 {
        self.segments.iter().map(|s| s.estimated_cells).sum()
    }
}

impl fmt::Display for QueryExplain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXPLAIN k={} rule={} planner={:?} scan={} dims={} skipping={} kernel={} \
             est_cells={:.0}",
            self.k,
            self.rule,
            self.planner,
            self.scan.label(),
            self.dims,
            if self.skipping { "on" } else { "off" },
            self.kernel,
            self.estimated_cells(),
        )?;
        if let Some(eligible) = self.eligible_rows {
            let live: usize = self.segments.iter().map(|s| s.live_rows).sum();
            writeln!(
                f,
                "  filter: {eligible} of {live} live rows eligible ({:.1}%)",
                eligible as f64 / (live.max(1)) as f64 * 100.0,
            )?;
        }
        if let Some(aggregate) = self.aggregate {
            // The synchronized scan interleaves the features' dimension
            // blocks, so the plan line shows the per-feature widths.
            let parts: Vec<String> = self
                .features
                .iter()
                .map(|ft| {
                    format!(
                        "f{} {} dims={}{}",
                        ft.feature,
                        ft.metric,
                        ft.dims,
                        if ft.external { " (external)" } else { "" }
                    )
                })
                .collect();
            writeln!(f, "  multi-feature: {} over [{}]", aggregate, parts.join(" | "))?;
        }
        let order: Vec<String> = self.visit_order.iter().map(|s| s.to_string()).collect();
        writeln!(f, "  visit order: {}", order.join(" -> "))?;
        for seg in &self.segments {
            let head: Vec<String> = seg.plan.order.iter().take(8).map(|d| d.to_string()).collect();
            let ellipsis = if seg.plan.order.len() > 8 { " …" } else { "" };
            let bound =
                seg.envelope_bound.map_or_else(|| "none".to_string(), |b| format!("{b:.4}"));
            let phases = match (seg.filter_cost, seg.refine_cost) {
                (Some(filter), Some(refine)) => {
                    format!(" (filter={filter:.0} + refine={refine:.0})")
                }
                _ => String::new(),
            };
            let eligible = match (seg.eligible_rows, seg.filter_selectivity()) {
                (Some(rows), Some(sel)) => format!(" eligible={rows} ({:.1}%)", sel * 100.0),
                _ => String::new(),
            };
            let bits = seg.code_bits.map_or_else(String::new, |b| format!(" bits={b}"));
            writeln!(
                f,
                "  segment {} rows {}..{} visit#{} [{}] bound={} est={:.0} cells{}{}{}",
                seg.segment,
                seg.rows.start,
                seg.rows.end,
                seg.visit_position,
                seg.provenance.label(),
                bound,
                seg.estimated_cells,
                phases,
                bits,
                eligible,
            )?;
            writeln!(
                f,
                "    schedule {:?}, order {}{}",
                seg.plan.schedule,
                head.join(" "),
                ellipsis
            )?;
        }
        Ok(())
    }
}

/// One segment's executed scan joined against its rendered plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentAnalysis {
    /// The segment index, in row-range order.
    pub segment: usize,
    /// The cost model's pre-execution cell estimate (from the EXPLAIN).
    pub estimated_cells: f64,
    /// The `(candidate, dimension)` cells the scan actually evaluated —
    /// [`bond::PruneTrace::contributions_evaluated`], exactly.
    pub scanned_cells: u64,
    /// Quantized code cells the first-pass filter (or approximate scan)
    /// actually swept; `0` for exact scans.
    pub filter_cells: u64,
    /// Rows the quantized filter let through to exact refinement; `0` when
    /// no filter ran.
    pub refine_rows: u64,
    /// The code bit-width the quantized sweep actually used (from the
    /// executed trace); `0` when the scan ran without codes.
    pub filter_bits: u8,
    /// The scan-kernel flavour the segment's hot loops actually dispatched
    /// to; `None` for skipped segments (nothing ran).
    pub kernel: Option<&'static str>,
    /// Whether the segment was skipped outright via its zone-map bound.
    pub skipped: bool,
    /// The pruning rule that produced the trace, as stamped by the engine.
    pub rule: Option<&'static str>,
    /// The number of dimensions after which the candidate set first shrank
    /// to at most `k` — the query's effective prune depth in this segment.
    /// `None` when pruning never got that far (or the segment was skipped).
    pub prune_depth: Option<usize>,
    /// Whether the executed plan equals the rendered one. `None` for a
    /// skipped segment (no plan was ever derived).
    pub plan_match: Option<bool>,
}

/// The post-execution audit of one request: the rendered plan joined with
/// what actually ran. Built by [`QueryOutcome::analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnalysis {
    /// The number of neighbours the request asked for.
    pub k: usize,
    /// The effective pruning rule's name (from the EXPLAIN).
    pub rule: &'static str,
    /// Per-segment audits, in segment (row-range) order.
    pub segments: Vec<SegmentAnalysis>,
}

impl QueryAnalysis {
    /// Total estimated cells across all segments (from the EXPLAIN).
    pub fn estimated_cells(&self) -> f64 {
        self.segments.iter().map(|s| s.estimated_cells).sum()
    }

    /// Total cells actually scanned — matches
    /// [`QueryOutcome::contributions_evaluated`] exactly.
    pub fn scanned_cells(&self) -> u64 {
        self.segments.iter().map(|s| s.scanned_cells).sum()
    }

    /// Total quantized code cells swept — matches
    /// [`QueryOutcome::quant_filter_cells`] exactly.
    pub fn filter_cells(&self) -> u64 {
        self.segments.iter().map(|s| s.filter_cells).sum()
    }

    /// `|estimated − scanned| / scanned` in percent — the same calibration
    /// error the engine folds into its `planner.cost.abs_rel_error`
    /// histogram (with `scanned` floored at one cell to stay finite).
    pub fn abs_rel_error_pct(&self) -> f64 {
        let scanned = self.scanned_cells() as f64;
        (self.estimated_cells() - scanned).abs() / scanned.max(1.0) * 100.0
    }

    /// Number of segments skipped outright.
    pub fn segments_skipped(&self) -> usize {
        self.segments.iter().filter(|s| s.skipped).count()
    }

    /// Whether every executed plan matched its rendered plan (skipped
    /// segments, which executed no plan, do not count against a match).
    pub fn plans_match(&self) -> bool {
        self.segments.iter().all(|s| s.plan_match != Some(false))
    }
}

impl fmt::Display for QueryAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ANALYZE k={} rule={} estimated={:.0} scanned={} error={:.1}% plans_match={}",
            self.k,
            self.rule,
            self.estimated_cells(),
            self.scanned_cells(),
            self.abs_rel_error_pct(),
            self.plans_match(),
        )?;
        for seg in &self.segments {
            if seg.skipped {
                writeln!(f, "  segment {}: skipped (zone-map bound beat κ)", seg.segment)?;
                continue;
            }
            let depth = seg.prune_depth.map_or_else(|| "never".to_string(), |d| d.to_string());
            let filter = if seg.filter_cells > 0 {
                format!(
                    " filter_cells={} refine_rows={} bits={}",
                    seg.filter_cells, seg.refine_rows, seg.filter_bits
                )
            } else {
                String::new()
            };
            let kernel = seg.kernel.map_or_else(String::new, |k| format!(" kernel={k}"));
            writeln!(
                f,
                "  segment {}: scanned {} est {:.0}{} prune_depth@k={} rule={} plan={}{}",
                seg.segment,
                seg.scanned_cells,
                seg.estimated_cells,
                filter,
                depth,
                seg.rule.unwrap_or("?"),
                match seg.plan_match {
                    Some(true) => "match",
                    Some(false) => "DIVERGED",
                    None => "n/a",
                },
                kernel,
            )?;
        }
        Ok(())
    }
}

impl Engine {
    /// Renders the execution plan this engine would choose for `spec`,
    /// without executing it: per segment, the derived [`SegmentPlan`]
    /// (dimension order, warmup schedule), the visit-order position, the
    /// zone-map envelope bound toward the query, the cost model's cell
    /// estimate and the plan's provenance (uniform / a-priori /
    /// feedback-cold / feedback-warm).
    ///
    /// EXPLAIN and [`Engine::execute`] share the same plan-derivation code
    /// path, so — unless feedback advances between the two calls — the
    /// rendered plan is the executed plan, which
    /// [`QueryOutcome::analyze`] verifies.
    ///
    /// # Errors
    ///
    /// The same validation errors [`Engine::execute`] would return for
    /// this spec; explaining never touches column data.
    pub fn explain(&self, spec: &QuerySpec) -> Result<QueryExplain> {
        self.validate(spec)?;
        let counts = match spec.filter_override() {
            Some(filter) => Some(self.filter_eligibility(filter)?),
            None => None,
        };
        if let QueryKind::MultiFeature(mf) = spec.kind() {
            return Ok(self.explain_multifeature(spec, mf, counts));
        }
        let rule = spec.rule_override().unwrap_or(self.rule());
        let planner = spec.planner_override().unwrap_or(self.planner());
        let scan = spec.scan_mode_override().unwrap_or(self.scan_mode());
        let metric = rule.make_metric();
        let objective = rule.objective();
        let query = spec.vector();
        let query_sum: f64 = query.iter().sum();
        let skipping = planner.is_stats_driven() && self.kappa_shared() && !scan.is_approximate();
        let visit_order = if planner.uses_feedback() && self.kappa_shared() {
            self.plan_visit_order(metric.as_ref(), objective, query)
        } else {
            (0..self.partitions()).collect()
        };
        let mut visit_position = vec![0usize; self.partitions()];
        for (pos, &si) in visit_order.iter().enumerate() {
            visit_position[si] = pos;
        }
        let feedback = self.feedback_snapshot();
        let min_warm = self.cost_model().min_warm_searches;
        let stats = self.segment_stats();
        // Filter scans sweep the adaptively bit-sized companion; rendering
        // the policy's current pick here is what EXPLAIN promises — the
        // width `execute` would sweep with right now.
        let adaptive_bits =
            matches!(scan, ScanMode::QuantizedFilter).then(|| self.adaptive_code_bits());
        let segments = self
            .segment_specs()
            .iter()
            .enumerate()
            .map(|(si, seg_spec)| {
                let snapshot = &feedback.segments[si];
                let plan = self.derive_segment_plan(si, planner, rule, query, Some(snapshot));
                let provenance = match planner {
                    PlannerKind::Uniform => PlanProvenance::Uniform,
                    PlannerKind::Adaptive => PlanProvenance::Apriori,
                    PlannerKind::Feedback => {
                        if snapshot.is_warm(min_warm) {
                            PlanProvenance::FeedbackWarm
                        } else {
                            PlanProvenance::FeedbackCold
                        }
                    }
                };
                let envelope_bound =
                    self.optimistic_bound(si, metric.as_ref(), objective, query, query_sum);
                let (mut estimated_cells, mut filter_cost, mut refine_cost) =
                    self.segment_estimate(si, scan, Some(snapshot), spec.k(), skipping);
                let live_rows = stats[si].live_rows;
                let eligible_rows = counts.as_ref().map(|c| c[si]);
                if let Some(eligible) = eligible_rows {
                    // The same per-segment selectivity discount
                    // `estimate_cost` prices admission with, applied
                    // proportionally to the phase split.
                    let discounted = self.cost_model().filtered_cost(
                        estimated_cells,
                        eligible,
                        live_rows,
                        spec.k(),
                    );
                    let ratio =
                        if estimated_cells > 0.0 { discounted / estimated_cells } else { 0.0 };
                    estimated_cells = discounted;
                    filter_cost = filter_cost.map(|c| c * ratio);
                    refine_cost = refine_cost.map(|c| c * ratio);
                }
                let code_bits = match &adaptive_bits {
                    Some(bits) => Some(bits[si]),
                    None => scan.uses_codes().then(|| scan.bits()),
                };
                SegmentExplain {
                    segment: si,
                    rows: seg_spec.range(),
                    visit_position: visit_position[si],
                    plan,
                    provenance,
                    envelope_bound,
                    estimated_cells,
                    filter_cost,
                    refine_cost,
                    code_bits,
                    eligible_rows,
                    live_rows,
                }
            })
            .collect();
        Ok(QueryExplain {
            k: spec.k(),
            rule: rule.name(),
            planner,
            scan,
            dims: self.table().dims(),
            skipping,
            kernel: Kernel::active().label(),
            visit_order,
            segments,
            features: Vec::new(),
            aggregate: None,
            eligible_rows: counts.map(|c| c.iter().sum()),
        })
    }

    /// Renders the plan for a multi-feature request: the synchronized scan
    /// visits every segment in row order, interleaving the features'
    /// dimension blocks, so the per-segment "plan" is the concatenated
    /// dimension space under the engine's block schedule and the estimate
    /// is the full synchronized sweep (discounted by filter selectivity).
    fn explain_multifeature(
        &self,
        spec: &QuerySpec,
        mf: &MultiFeatureSpec,
        counts: Option<Vec<usize>>,
    ) -> QueryExplain {
        let features: Vec<FeatureExplain> = mf
            .features()
            .iter()
            .enumerate()
            .map(|(i, ft)| FeatureExplain {
                feature: i,
                dims: ft.query().len(),
                metric: match ft.metric() {
                    FeatureMetricKind::HistogramIntersection => "histogram-intersection",
                    FeatureMetricKind::Euclidean => "euclidean",
                },
                external: ft.table().is_some(),
            })
            .collect();
        let total_dims: usize = features.iter().map(|ft| ft.dims).sum();
        let stats = self.segment_stats();
        let segments = self
            .segment_specs()
            .iter()
            .enumerate()
            .map(|(si, seg_spec)| {
                let live_rows = stats[si].live_rows;
                let eligible_rows = counts.as_ref().map(|c| c[si]);
                let scanned = eligible_rows.unwrap_or(live_rows);
                SegmentExplain {
                    segment: si,
                    rows: seg_spec.range(),
                    visit_position: si,
                    plan: SegmentPlan {
                        order: (0..total_dims).collect(),
                        schedule: self.params().schedule,
                    },
                    provenance: PlanProvenance::Uniform,
                    envelope_bound: None,
                    estimated_cells: (scanned * total_dims) as f64,
                    filter_cost: None,
                    refine_cost: None,
                    code_bits: None,
                    eligible_rows,
                    live_rows,
                }
            })
            .collect();
        QueryExplain {
            k: spec.k(),
            rule: "multi-feature",
            planner: PlannerKind::Uniform,
            scan: ScanMode::Exact,
            dims: total_dims,
            skipping: false,
            kernel: Kernel::active().label(),
            visit_order: (0..self.partitions()).collect(),
            segments,
            features,
            aggregate: Some(mf.aggregate().label()),
            eligible_rows: counts.map(|c| c.iter().sum()),
        }
    }
}

impl QueryOutcome {
    /// Joins this executed outcome against the plan `explain` rendered for
    /// the same request: per segment, cells scanned vs estimated, the
    /// prune depth at which the candidate set reached `k`, skip status and
    /// whether the executed plan matches the rendered one.
    ///
    /// The per-segment `scanned_cells` are exactly the summed
    /// [`bond::PruneTrace`] work counters, so
    /// [`QueryAnalysis::scanned_cells`] equals
    /// [`QueryOutcome::contributions_evaluated`].
    pub fn analyze(&self, explain: &QueryExplain) -> QueryAnalysis {
        let segments = self
            .segments
            .iter()
            .zip(&explain.segments)
            .enumerate()
            .map(|(si, (run, rendered))| SegmentAnalysis {
                segment: si,
                estimated_cells: rendered.estimated_cells,
                scanned_cells: run.trace.contributions_evaluated,
                filter_cells: run.trace.filter_cells,
                refine_rows: run.trace.refine_rows,
                filter_bits: run.trace.filter_bits,
                kernel: run.trace.kernel,
                skipped: run.trace.segment_skipped,
                rule: run.trace.rule,
                prune_depth: run.trace.dims_to_reach(explain.k),
                plan_match: run.plan.as_ref().map(|executed| *executed == rendered.plan),
            })
            .collect();
        QueryAnalysis { k: explain.k, rule: explain.rule, segments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlannerKind, RequestBatch, RuleKind};
    use vdstore::DecomposedTable;

    fn table(rows: usize, dims: usize) -> DecomposedTable {
        let vectors: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                let mut v: Vec<f64> =
                    (0..dims).map(|d| ((r * 13 + d * 29) % 83) as f64 + 1.0).collect();
                let total: f64 = v.iter().sum();
                v.iter_mut().for_each(|x| *x /= total);
                v
            })
            .collect();
        DecomposedTable::from_vectors("explain", &vectors).unwrap()
    }

    #[test]
    fn explain_renders_without_executing() {
        let engine = Engine::builder(table(200, 8)).partitions(4).threads(1).build().unwrap();
        let spec = QuerySpec::new(engine.table().row(17).unwrap(), 5);
        let explain = engine.explain(&spec).unwrap();
        assert_eq!(explain.k, 5);
        assert_eq!(explain.rule, "Hq");
        assert_eq!(explain.planner, PlannerKind::Uniform);
        assert_eq!(explain.segments.len(), engine.partitions());
        assert_eq!(explain.visit_order, vec![0, 1, 2, 3]);
        assert!(!explain.skipping, "uniform planning never skips");
        assert!(explain.estimated_cells() > 0.0);
        for seg in &explain.segments {
            assert_eq!(seg.provenance, PlanProvenance::Uniform);
            assert!(seg.plan.is_valid(8));
            assert!(seg.envelope_bound.is_some());
        }
        // rendering is purely observational: no feedback accumulated
        assert_eq!(engine.feedback_snapshot().total_searches(), 0);
        let text = explain.to_string();
        assert!(text.contains("EXPLAIN k=5 rule=Hq"));
        assert!(text.contains("visit order: 0 -> 1 -> 2 -> 3"));
    }

    #[test]
    fn explain_rejects_what_execute_rejects() {
        let engine = Engine::builder(table(50, 4)).partitions(2).threads(1).build().unwrap();
        assert!(engine.explain(&QuerySpec::new(vec![0.5; 3], 1)).is_err());
        assert!(engine.explain(&QuerySpec::new(vec![0.25; 4], 0)).is_err());
    }

    #[test]
    fn analyze_joins_plan_with_trace() {
        let engine = Engine::builder(table(300, 8))
            .partitions(3)
            .threads(1)
            .planner(PlannerKind::Adaptive)
            .build()
            .unwrap();
        let spec = QuerySpec::new(engine.table().row(42).unwrap(), 5);
        let explain = engine.explain(&spec).unwrap();
        let outcome = engine.execute(&RequestBatch::single(spec)).unwrap().queries.remove(0);
        let analysis = outcome.analyze(&explain);
        assert_eq!(analysis.scanned_cells(), outcome.contributions_evaluated());
        assert_eq!(analysis.segments_skipped(), outcome.segments_skipped());
        assert!(analysis.plans_match(), "{analysis}");
        for (seg, run) in analysis.segments.iter().zip(&outcome.segments) {
            assert_eq!(seg.scanned_cells, run.trace.contributions_evaluated);
            if !seg.skipped {
                assert_eq!(seg.rule, Some("Hq"));
            }
        }
        let text = analysis.to_string();
        assert!(text.contains("ANALYZE k=5 rule=Hq"));
    }

    #[test]
    fn filtered_requests_explain_their_selectivity() {
        use std::sync::Arc;
        use vdstore::Bitmap;
        let engine = Engine::builder(table(200, 8)).partitions(4).threads(1).build().unwrap();
        let filter = Arc::new(Bitmap::from_rows(200, (0..50).collect::<Vec<_>>().as_slice()));
        let spec = QuerySpec::new(engine.table().row(17).unwrap(), 5).filter_shared(filter);
        let unfiltered = engine.explain(&QuerySpec::new(engine.table().row(17).unwrap(), 5));
        let explain = engine.explain(&spec).unwrap();
        assert_eq!(explain.eligible_rows, Some(50));
        // rows 0..50 live entirely in segment 0 of 4 × 50-row segments
        assert_eq!(explain.segments[0].eligible_rows, Some(50));
        assert_eq!(explain.segments[0].filter_selectivity(), Some(1.0));
        assert_eq!(explain.segments[1].eligible_rows, Some(0));
        assert_eq!(explain.segments[1].estimated_cells, 0.0);
        assert!(explain.estimated_cells() < unfiltered.unwrap().estimated_cells());
        let text = explain.to_string();
        assert!(text.contains("filter: 50 of 200 live rows eligible (25.0%)"), "{text}");
        assert!(text.contains("eligible=50 (100.0%)"), "{text}");
    }

    #[test]
    fn multi_feature_requests_explain_the_feature_interleave() {
        use crate::batch::{AggregateSpec, FeatureSpec, MultiFeatureSpec};
        use bond::FeatureMetricKind;
        let engine = Engine::builder(table(120, 6)).partitions(3).threads(1).build().unwrap();
        let q = engine.table().row(7).unwrap();
        let mf = MultiFeatureSpec::new(
            vec![
                FeatureSpec::new(q.clone(), FeatureMetricKind::HistogramIntersection),
                FeatureSpec::new(q, FeatureMetricKind::Euclidean),
            ],
            AggregateSpec::WeightedAverage(vec![0.7, 0.3]),
        );
        let spec = QuerySpec::multi_feature(mf, 4);
        let explain = engine.explain(&spec).unwrap();
        assert_eq!(explain.rule, "multi-feature");
        assert_eq!(explain.aggregate, Some("weighted_average"));
        assert_eq!(explain.features.len(), 2);
        assert_eq!(explain.features[0].metric, "histogram-intersection");
        assert_eq!(explain.features[1].metric, "euclidean");
        assert_eq!(explain.dims, 12, "concatenated feature dimension space");
        assert_eq!(explain.segments.len(), 3);
        // full synchronized sweep: live rows × total dims per segment
        assert_eq!(explain.estimated_cells(), (120 * 12) as f64);
        let text = explain.to_string();
        assert!(
            text.contains(
                "multi-feature: weighted_average over \
                 [f0 histogram-intersection dims=6 | f1 euclidean dims=6]"
            ),
            "{text}"
        );
    }

    #[test]
    fn weighted_rules_explain_with_their_own_name() {
        let engine = Engine::builder(table(100, 4)).partitions(2).threads(1).build().unwrap();
        let spec = QuerySpec::new(vec![0.25; 4], 3)
            .rule(RuleKind::weighted_euclidean(vec![1.0, 2.0, 0.5, 1.0]).unwrap());
        let explain = engine.explain(&spec).unwrap();
        assert_eq!(explain.rule, "WEv");
    }
}
