//! The parallel, partitioned execution engine.
//!
//! An [`Engine`] is built once per table and then serves queries: the table
//! is split into contiguous row-range [`Segment`]s, every query's
//! branch-and-bound search runs per segment on a pool of workers, the
//! segments pool their pruning bound κ through a [`SharedKappa`] cell, and
//! the per-segment top-k heaps merge into the final answer. Because every
//! segment refines its survivors to *exact* scores (in the same dimension
//! order the sequential searcher uses), the merged top-k is bit-identical
//! to a sequential [`BondSearcher`] search over the whole table.

use crate::batch::{BatchOutcome, QueryBatch, QueryOutcome, SegmentRun};
use crate::kappa::SharedKappa;
use crate::rules::RuleKind;
use bond::{
    search_segment, BondError, BondParams, BondSearcher, KappaCell, Result, SearchOutcome,
    SegmentContext,
};
use bond_metrics::Objective;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use vdstore::topk::Scored;
use vdstore::{DecomposedTable, Segment, SegmentStats, TopKLargest, TopKSmallest};

/// Builds an [`Engine`] for one table.
#[derive(Debug)]
pub struct EngineBuilder<'a> {
    table: &'a DecomposedTable,
    partitions: usize,
    threads: usize,
    params: BondParams,
    rule: RuleKind,
    share_kappa: bool,
}

impl<'a> EngineBuilder<'a> {
    /// Number of row-range segments the table is split into. Defaults to
    /// the machine's available parallelism.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    /// Number of worker threads (no implicit cap — oversubscribing the
    /// machine is the caller's choice). Defaults to the machine's available
    /// parallelism; `1` executes inline without spawning.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Search parameters (schedule, ordering, materialisation threshold).
    ///
    /// `refine_survivors` is forced to `true`: merging per-segment answers
    /// requires exact scores, and exact scores are also what makes the
    /// parallel result bit-identical to the sequential one.
    pub fn params(mut self, params: BondParams) -> Self {
        self.params = params;
        self
    }

    /// Which metric + pruning criterion to serve. Defaults to
    /// [`RuleKind::HistogramHq`].
    pub fn rule(mut self, rule: RuleKind) -> Self {
        self.rule = rule;
        self
    }

    /// Whether segments of one query share their pruning bound κ through an
    /// atomic cell (default `true`). Disabling isolates the segments — same
    /// answers, strictly less pruning; useful for measuring the κ-sharing
    /// benefit.
    pub fn share_kappa(mut self, share: bool) -> Self {
        self.share_kappa = share;
        self
    }

    /// Finishes the build: partitions the table and materialises whatever
    /// the rule needs once (e.g. the `T(x)` table for Ev).
    pub fn build(self) -> Engine<'a> {
        let mut params = self.params;
        params.refine_survivors = true;
        let segments = self.table.partition_segments(self.partitions);
        let row_sums = self.rule.needs_total_mass().then(|| self.table.row_sums());
        Engine {
            table: self.table,
            segments,
            threads: self.threads,
            params,
            rule: self.rule,
            share_kappa: self.share_kappa,
            row_sums,
        }
    }
}

/// A query-execution engine bound to one decomposed table.
///
/// Construction partitions the table and pre-materialises shared state;
/// [`Engine::execute`] then serves whole batches and
/// [`Engine::search`] single queries.
#[derive(Debug)]
pub struct Engine<'a> {
    table: &'a DecomposedTable,
    segments: Vec<Segment<'a>>,
    threads: usize,
    params: BondParams,
    rule: RuleKind,
    share_kappa: bool,
    /// Full-table `T(x)`, materialised once when the rule needs it; workers
    /// slice it per segment.
    row_sums: Option<Vec<f64>>,
}

impl<'a> Engine<'a> {
    /// Starts building an engine over `table` with default settings.
    pub fn builder(table: &'a DecomposedTable) -> EngineBuilder<'a> {
        let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineBuilder {
            table,
            partitions: parallelism,
            threads: parallelism,
            params: BondParams::default(),
            rule: RuleKind::HistogramHq,
            share_kappa: true,
        }
    }

    /// The table this engine serves.
    pub fn table(&self) -> &'a DecomposedTable {
        self.table
    }

    /// The engine's segments, in row order.
    pub fn segments(&self) -> &[Segment<'a>] {
        &self.segments
    }

    /// Number of partitions actually in use (may be lower than requested
    /// for tiny tables).
    pub fn partitions(&self) -> usize {
        self.segments.len()
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The metric + rule the engine serves.
    pub fn rule(&self) -> RuleKind {
        self.rule
    }

    /// The effective search parameters.
    pub fn params(&self) -> &BondParams {
        &self.params
    }

    /// Per-dimension statistics of every segment — the per-partition view
    /// of the collection's distribution (diverging segment statistics are
    /// the signal for per-segment tuning or re-partitioning).
    pub fn segment_stats(&self) -> Vec<SegmentStats> {
        self.segments.iter().map(|s| s.stats()).collect()
    }

    /// Runs one k-NN query; equivalent to a single-query [`Engine::execute`].
    pub fn search(&self, query: &[f64], k: usize) -> Result<QueryOutcome> {
        let batch = QueryBatch::from_queries(vec![query.to_vec()], k);
        let mut outcome = self.execute(&batch)?;
        Ok(outcome.queries.pop().expect("one outcome per query"))
    }

    /// Executes a whole batch: all `queries × segments` searches are
    /// scheduled on one worker pool, per-query setup is done once, and each
    /// query's per-segment answers are merged into its global top-k.
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchOutcome> {
        let k = batch.k();
        let live = self.table.live_rows();
        if k == 0 || k > live {
            return Err(BondError::InvalidK { k, rows: live });
        }
        for query in batch.queries() {
            if query.len() != self.table.dims() {
                return Err(BondError::QueryDimensionMismatch {
                    expected: self.table.dims(),
                    actual: query.len(),
                });
            }
        }
        if batch.is_empty() {
            return Ok(BatchOutcome { queries: Vec::new() });
        }

        // Per-query setup, done once and shared by every segment worker:
        // the dimension processing order and (optionally) the κ cell.
        let objective = self.rule.objective();
        let orders: Vec<Vec<usize>> = batch
            .queries()
            .iter()
            .map(|q| self.params.ordering.order(q, None, self.table.dims()))
            .collect();
        let kappas: Vec<Option<SharedKappa>> = (0..batch.len())
            .map(|_| self.share_kappa.then(|| SharedKappa::new(objective)))
            .collect();

        let n_segments = self.segments.len();
        let n_tasks = batch.len() * n_segments;
        let slots: Vec<OnceLock<Result<SearchOutcome>>> =
            (0..n_tasks).map(|_| OnceLock::new()).collect();

        let run_task = |task: usize| {
            let qi = task / n_segments;
            let si = task % n_segments;
            let segment = &self.segments[si];
            let mut rule = self.rule.make_rule();
            let ctx = SegmentContext {
                kappa: kappas[qi].as_ref().map(|cell| cell as &dyn KappaCell),
                row_sums: self.row_sums.as_deref().map(|sums| &sums[segment.range()]),
                order: Some(&orders[qi]),
            };
            let outcome = search_segment(
                segment,
                &batch.queries()[qi],
                self.rule.metric(),
                rule.as_mut(),
                k,
                None,
                &self.params,
                &ctx,
            );
            slots[task].set(outcome).expect("each task is claimed exactly once");
        };

        let workers = self.threads.min(n_tasks);
        if workers <= 1 {
            for task in 0..n_tasks {
                run_task(task);
            }
        } else {
            let next_task = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let task = next_task.fetch_add(1, Ordering::Relaxed);
                        if task >= n_tasks {
                            break;
                        }
                        run_task(task);
                    });
                }
            });
        }

        let mut per_task =
            slots.into_iter().map(|slot| slot.into_inner().expect("all tasks completed"));

        let mut queries = Vec::with_capacity(batch.len());
        for _ in 0..batch.len() {
            let segment_outcomes =
                per_task.by_ref().take(n_segments).collect::<Result<Vec<SearchOutcome>>>()?;
            queries.push(self.merge_query(segment_outcomes, k, objective));
        }
        Ok(BatchOutcome { queries })
    }

    /// Merges per-segment outcomes (exact-scored, global row ids) into the
    /// query's global top-k. The k best under the total `(score, row)`
    /// order are unique, so the merge is deterministic and matches the
    /// sequential searcher bit for bit.
    fn merge_query(
        &self,
        segment_outcomes: Vec<SearchOutcome>,
        k: usize,
        objective: Objective,
    ) -> QueryOutcome {
        let mut segments = Vec::with_capacity(segment_outcomes.len());
        let hits = match objective {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(k);
                for (segment, outcome) in self.segments.iter().zip(segment_outcomes) {
                    for hit in &outcome.hits {
                        heap.push(hit.row, hit.score);
                    }
                    segments.push(SegmentRun { rows: segment.range(), trace: outcome.trace });
                }
                heap.into_sorted_vec()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(k);
                for (segment, outcome) in self.segments.iter().zip(segment_outcomes) {
                    for hit in &outcome.hits {
                        heap.push(hit.row, hit.score);
                    }
                    segments.push(SegmentRun { rows: segment.range(), trace: outcome.trace });
                }
                heap.into_sorted_vec()
            }
        };
        QueryOutcome { hits, segments }
    }

    /// Convenience: the sequential reference answer for the same rule and
    /// parameters, computed by the classic single-threaded [`BondSearcher`]
    /// (used by tests, benches and doc examples to demonstrate equivalence).
    pub fn sequential_reference(&self, query: &[f64], k: usize) -> Result<Vec<Scored>> {
        let searcher = BondSearcher::new(self.table);
        let mut rule = self.rule.make_rule();
        let outcome = searcher.search_with_rule(
            query,
            self.rule.metric(),
            rule.as_mut(),
            k,
            None,
            &self.params,
        )?;
        Ok(outcome.hits)
    }
}
