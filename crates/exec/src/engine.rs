//! The parallel, partitioned execution engine.
//!
//! An [`Engine`] is built once per table and then serves queries: the table
//! is split into contiguous row-range [`Segment`]s, every query's
//! branch-and-bound search runs per segment on a pool of workers, the
//! segments pool their pruning bound κ through a [`SharedKappa`] cell, and
//! the per-segment top-k heaps merge into the final answer.
//!
//! *What to scan, in which dimension order, with which block schedule* is a
//! per-segment [`SegmentPlan`] chosen by the engine's [`PlannerKind`]:
//!
//! * [`PlannerKind::Uniform`] gives every segment the same plan (the
//!   engine's `BondParams`), every segment refines its survivors to exact
//!   scores in the same dimension order the sequential searcher uses, and
//!   the merged top-k is bit-identical to a sequential [`BondSearcher`]
//!   search over the whole table.
//! * [`PlannerKind::Adaptive`] derives each segment's plan from its cached
//!   [`SegmentStats`] and additionally skips whole segments whose zone-map
//!   envelope bound provably cannot reach the current κ — without touching
//!   any of the segment's columns. Per-segment refinement orders then
//!   differ, so the merge re-verifies exact scores (fixed, natural
//!   summation order) and breaks ties deterministically on the row id:
//!   rank-correct rather than bit-identical.

use crate::batch::{BatchOutcome, QueryBatch, QueryOutcome, SegmentRun};
use crate::kappa::SharedKappa;
use crate::planner::{AdaptivePlanner, PlannerKind};
use crate::rules::RuleKind;
use bond::{
    prune_slack, search_segment, BondError, BondParams, BondSearcher, DimensionOrdering, KappaCell,
    PruneTrace, Result, SearchOutcome, SegmentContext, SegmentPlan,
};
use bond_metrics::{DecomposableMetric, Objective};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use vdstore::topk::Scored;
use vdstore::{DecomposedTable, Envelope, Segment, SegmentStats, TopKLargest, TopKSmallest};

/// Builds an [`Engine`] for one table.
#[derive(Debug)]
pub struct EngineBuilder<'a> {
    table: &'a DecomposedTable,
    partitions: usize,
    threads: usize,
    params: BondParams,
    rule: RuleKind,
    share_kappa: bool,
    planner: PlannerKind,
}

impl<'a> EngineBuilder<'a> {
    /// Number of row-range segments the table is split into. Defaults to
    /// the machine's available parallelism.
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.max(1);
        self
    }

    /// Number of worker threads (no implicit cap — oversubscribing the
    /// machine is the caller's choice). Defaults to the machine's available
    /// parallelism; `1` executes inline without spawning.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Search parameters (schedule, ordering, materialisation threshold).
    ///
    /// `refine_survivors` is forced to `true`: merging per-segment answers
    /// requires exact scores, and exact scores are also what makes the
    /// uniform parallel result bit-identical to the sequential one. For a
    /// weighted rule, any ordering other than
    /// [`DimensionOrdering::Explicit`] is replaced by the weighted default
    /// ordering — the same rewrite the sequential weighted entry points
    /// apply (and what keeps [`Engine::sequential_reference`] comparable);
    /// pass an explicit permutation to pin a specific order. Note that
    /// under [`PlannerKind::Adaptive`] the ordering and schedule come from
    /// each segment's statistics instead — the params' ordering/schedule
    /// (explicit or not) only govern the `Uniform` planner and the
    /// sequential reference.
    pub fn params(mut self, params: BondParams) -> Self {
        self.params = params;
        self
    }

    /// Which metric + pruning criterion to serve. Defaults to
    /// [`RuleKind::HistogramHq`]. Weighted kinds switch non-`Explicit`
    /// orderings to [`DimensionOrdering::WeightedQueryDescending`] at build
    /// time (see [`EngineBuilder::params`]).
    pub fn rule(mut self, rule: RuleKind) -> Self {
        self.rule = rule;
        self
    }

    /// Whether segments of one query share their pruning bound κ through an
    /// atomic cell (default `true`). Disabling isolates the segments — same
    /// answers, strictly less pruning (and no adaptive segment skipping,
    /// which consumes the shared κ); useful for measuring the κ-sharing
    /// benefit.
    pub fn share_kappa(mut self, share: bool) -> Self {
        self.share_kappa = share;
        self
    }

    /// How segment plans are chosen (default [`PlannerKind::Uniform`]).
    /// [`PlannerKind::Adaptive`] picks each segment's dimension order and
    /// block schedule from its statistics — overriding the params'
    /// ordering/schedule — and enables κ-aware whole-segment skipping.
    pub fn planner(mut self, planner: PlannerKind) -> Self {
        self.planner = planner;
        self
    }

    /// Finishes the build: partitions the table and materialises whatever
    /// the configuration needs once — the `T(x)` table for the per-vector
    /// rules, and the per-segment statistics when the adaptive planner (or
    /// a later [`Engine::segment_stats`] call) will consume them.
    pub fn build(self) -> Engine<'a> {
        let mut params = self.params;
        params.refine_survivors = true;
        // Weighted rules default to the weighted ordering, mirroring the
        // sequential searcher's weighted entry points.
        if self.rule.weights().is_some()
            && !matches!(params.ordering, DimensionOrdering::Explicit(_))
        {
            params.ordering = DimensionOrdering::WeightedQueryDescending;
        }
        let segments = self.table.partition_segments(self.partitions);
        let row_sums = self.rule.needs_total_mass().then(|| self.table.row_sums());
        let engine = Engine {
            table: self.table,
            segments,
            threads: self.threads,
            params,
            rule: self.rule,
            share_kappa: self.share_kappa,
            planner: self.planner,
            row_sums,
            stats: OnceLock::new(),
            envelopes: OnceLock::new(),
        };
        if engine.planner == PlannerKind::Adaptive {
            // Computed once here; every query of every batch reuses them.
            engine.segment_envelopes();
        }
        engine
    }
}

/// A query-execution engine bound to one decomposed table.
///
/// Construction partitions the table and pre-materialises shared state;
/// [`Engine::execute`] then serves whole batches and
/// [`Engine::search`] single queries.
#[derive(Debug)]
pub struct Engine<'a> {
    table: &'a DecomposedTable,
    segments: Vec<Segment<'a>>,
    threads: usize,
    params: BondParams,
    rule: RuleKind,
    share_kappa: bool,
    planner: PlannerKind,
    /// Full-table `T(x)`, materialised once when the rule needs it; workers
    /// slice it per segment.
    row_sums: Option<Vec<f64>>,
    /// Per-segment statistics, computed once (eagerly for the adaptive
    /// planner, lazily on first [`Engine::segment_stats`] call otherwise).
    stats: OnceLock<Vec<SegmentStats>>,
    /// Per-segment zone maps derived from `stats`, cached so batches do not
    /// re-allocate them on every [`Engine::execute`] call.
    envelopes: OnceLock<Vec<Option<Envelope>>>,
}

impl<'a> Engine<'a> {
    /// Starts building an engine over `table` with default settings.
    pub fn builder(table: &'a DecomposedTable) -> EngineBuilder<'a> {
        let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineBuilder {
            table,
            partitions: parallelism,
            threads: parallelism,
            params: BondParams::default(),
            rule: RuleKind::HistogramHq,
            share_kappa: true,
            planner: PlannerKind::Uniform,
        }
    }

    /// The table this engine serves.
    pub fn table(&self) -> &'a DecomposedTable {
        self.table
    }

    /// The engine's segments, in row order.
    pub fn segments(&self) -> &[Segment<'a>] {
        &self.segments
    }

    /// Number of partitions actually in use (may be lower than requested
    /// for tiny tables).
    pub fn partitions(&self) -> usize {
        self.segments.len()
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The metric + rule the engine serves.
    pub fn rule(&self) -> &RuleKind {
        &self.rule
    }

    /// The planning policy in effect.
    pub fn planner(&self) -> PlannerKind {
        self.planner
    }

    /// The effective search parameters.
    pub fn params(&self) -> &BondParams {
        &self.params
    }

    /// Per-dimension statistics of every segment — the per-partition view
    /// of the collection's distribution and the input of the adaptive
    /// planner. Computed once per engine (at build time for adaptive
    /// engines) and cached; repeated calls are free.
    pub fn segment_stats(&self) -> &[SegmentStats] {
        self.stats.get_or_init(|| self.segments.iter().map(Segment::stats).collect())
    }

    /// The per-segment zone maps (value envelopes), derived from the cached
    /// statistics once and reused by every batch's skip checks.
    fn segment_envelopes(&self) -> &[Option<Envelope>] {
        self.envelopes
            .get_or_init(|| self.segment_stats().iter().map(SegmentStats::envelope).collect())
    }

    /// Runs one k-NN query; equivalent to a single-query [`Engine::execute`].
    pub fn search(&self, query: &[f64], k: usize) -> Result<QueryOutcome> {
        let batch = QueryBatch::from_queries(vec![query.to_vec()], k);
        let mut outcome = self.execute(&batch)?;
        Ok(outcome.queries.pop().expect("one outcome per query"))
    }

    /// Executes a whole batch: all `queries × segments` searches are
    /// scheduled on one worker pool, per-query setup (segment plans, κ
    /// cells) is done once, and each query's per-segment answers are merged
    /// into its global top-k. Under the adaptive planner, segments whose
    /// zone-map bound cannot reach the query's current κ are skipped
    /// entirely (their [`SegmentRun::trace`] reports `segment_skipped`).
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchOutcome> {
        let k = batch.k();
        let dims = self.table.dims();
        let live = self.table.live_rows();
        if k == 0 || k > live {
            return Err(BondError::InvalidK { k, rows: live });
        }
        for query in batch.queries() {
            if query.len() != dims {
                return Err(BondError::QueryDimensionMismatch {
                    expected: dims,
                    actual: query.len(),
                });
            }
        }
        let weights = self.rule.weights();
        if let Some(w) = weights {
            if w.len() != dims {
                return Err(BondError::WeightDimensionMismatch { expected: dims, actual: w.len() });
            }
        }
        // Invalid weight *values* (directly constructed variants bypassing
        // the validating constructors) error here instead of panicking in
        // `make_metric` below.
        self.rule.validate(dims).map_err(BondError::InvalidParams)?;
        if batch.is_empty() {
            return Ok(BatchOutcome { queries: Vec::new() });
        }

        // Per-query setup, done once and shared by every segment worker:
        // the metric, the uniform plans and (optionally) the κ cell.
        // (Adaptive plans are per-(query, segment) values derived inside the
        // task itself — on the worker pool, and only for segments the
        // zone-map check does not skip.)
        let metric = self.rule.make_metric();
        let objective = self.rule.objective();
        let n_segments = self.segments.len();
        let uniform_plans: Vec<SegmentPlan> = match self.planner {
            PlannerKind::Uniform => batch
                .queries()
                .iter()
                .map(|q| SegmentPlan::uniform(&self.params, q, weights, dims))
                .collect(),
            PlannerKind::Adaptive => Vec::new(),
        };
        // Zone maps for whole-segment skipping (adaptive only).
        let envelopes: &[Option<Envelope>] = match self.planner {
            PlannerKind::Adaptive => self.segment_envelopes(),
            PlannerKind::Uniform => &[],
        };
        // Query coordinate sums T(q) for the total-mass skip bound.
        let query_sums: Vec<f64> = match self.planner {
            PlannerKind::Adaptive => batch.queries().iter().map(|q| q.iter().sum()).collect(),
            PlannerKind::Uniform => Vec::new(),
        };
        let kappas: Vec<Option<SharedKappa>> = (0..batch.len())
            .map(|_| self.share_kappa.then(|| SharedKappa::new(objective)))
            .collect();

        let n_tasks = batch.len() * n_segments;
        let slots: Vec<OnceLock<Result<SearchOutcome>>> =
            (0..n_tasks).map(|_| OnceLock::new()).collect();

        let run_task = |task: usize| {
            let qi = task / n_segments;
            let si = task % n_segments;
            let segment = &self.segments[si];
            let query = &batch.queries()[qi];
            let cell = kappas[qi].as_ref();

            if self.planner == PlannerKind::Adaptive {
                if let Some(outcome) = self.try_skip_segment(
                    si,
                    query,
                    query_sums[qi],
                    metric.as_ref(),
                    cell,
                    envelopes,
                ) {
                    slots[task].set(Ok(outcome)).expect("each task is claimed exactly once");
                    return;
                }
            }

            let mut rule = self.rule.make_rule();
            let adaptive_plan;
            let plan = match self.planner {
                PlannerKind::Uniform => &uniform_plans[qi],
                PlannerKind::Adaptive => {
                    adaptive_plan =
                        AdaptivePlanner.plan(&self.segment_stats()[si], query, weights, objective);
                    &adaptive_plan
                }
            };
            let ctx = SegmentContext {
                kappa: cell.map(|cell| cell as &dyn KappaCell),
                row_sums: self.row_sums.as_deref().map(|sums| &sums[segment.range()]),
                plan: Some(plan),
            };
            let outcome = search_segment(
                segment,
                query,
                metric.as_ref(),
                rule.as_mut(),
                k,
                weights,
                &self.params,
                &ctx,
            );
            if self.planner == PlannerKind::Adaptive {
                // The segment's k-th best *exact* score is a valid κ (k
                // witnesses reach it); publishing it arms the zone-map skip
                // for segments that have not started yet.
                if let (Some(cell), Ok(outcome)) = (cell, &outcome) {
                    if outcome.hits.len() >= k {
                        cell.tighten(outcome.hits[k - 1].score);
                    }
                }
            }
            slots[task].set(outcome).expect("each task is claimed exactly once");
        };

        let workers = self.threads.min(n_tasks);
        if workers <= 1 {
            for task in 0..n_tasks {
                run_task(task);
            }
        } else {
            let next_task = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let task = next_task.fetch_add(1, Ordering::Relaxed);
                        if task >= n_tasks {
                            break;
                        }
                        run_task(task);
                    });
                }
            });
        }

        let mut per_task =
            slots.into_iter().map(|slot| slot.into_inner().expect("all tasks completed"));

        let mut queries = Vec::with_capacity(batch.len());
        for query in batch.queries() {
            let segment_outcomes =
                per_task.by_ref().take(n_segments).collect::<Result<Vec<SearchOutcome>>>()?;
            queries.push(self.merge_query(query, metric.as_ref(), segment_outcomes, k, objective));
        }
        Ok(BatchOutcome { queries })
    }

    /// The zone-map check: when the query's κ is already tighter than the
    /// best score any vector inside the segment's envelope could reach, the
    /// segment contributes nothing and is skipped without touching its
    /// columns. Two independent per-segment bounds combine (the tighter
    /// wins): the per-dimension value envelope and the row-sum (total-mass)
    /// envelope. The same ε-slack as candidate pruning keeps boundary ties
    /// safe.
    fn try_skip_segment(
        &self,
        si: usize,
        query: &[f64],
        query_sum: f64,
        metric: &dyn DecomposableMetric,
        cell: Option<&SharedKappa>,
        envelopes: &[Option<Envelope>],
    ) -> Option<SearchOutcome> {
        let kappa = cell?.get()?;
        let (mins, maxs) = envelopes[si].as_ref()?;
        let mut optimistic = metric.envelope_best_score(query, mins, maxs);
        let stats = &self.segment_stats()[si];
        if let Some(mass_bound) =
            metric.mass_best_score(query_sum, stats.row_sum_min, stats.row_sum_max, query.len())
        {
            optimistic = match metric.objective() {
                Objective::Maximize => optimistic.min(mass_bound),
                Objective::Minimize => optimistic.max(mass_bound),
            };
        }
        let slack = prune_slack(kappa);
        let skip = match metric.objective() {
            Objective::Maximize => optimistic < kappa - slack,
            Objective::Minimize => optimistic > kappa + slack,
        };
        skip.then(|| SearchOutcome {
            hits: Vec::new(),
            trace: PruneTrace { segment_skipped: true, ..PruneTrace::default() },
        })
    }

    /// Merges per-segment outcomes (global row ids) into the query's global
    /// top-k.
    ///
    /// Under the uniform planner every segment refined in the same
    /// dimension order, so scores are directly comparable and the k best
    /// under the total `(score, row)` order match the sequential searcher
    /// bit for bit. Under the adaptive planner the refinement orders differ
    /// per segment, so every candidate hit's exact score is re-verified in
    /// one fixed (natural) summation order before ranking — that, plus the
    /// deterministic `RowId` tie-break, makes the merge rank-correct
    /// irrespective of each segment's plan, up to floating-point
    /// indistinguishability: two *distinct* rows whose exact scores differ
    /// by less than summation-order drift (a few ulps) may rank either way
    /// at a segment's k-cutoff. Exactly equal rows (duplicates) always
    /// order by row id, in both engines and the sequential reference.
    fn merge_query(
        &self,
        query: &[f64],
        metric: &dyn DecomposableMetric,
        segment_outcomes: Vec<SearchOutcome>,
        k: usize,
        objective: Objective,
    ) -> QueryOutcome {
        let reverify = self.planner == PlannerKind::Adaptive;
        let mut segments = Vec::with_capacity(segment_outcomes.len());
        let offer = |heap_push: &mut dyn FnMut(Scored)| {
            for (segment, outcome) in self.segments.iter().zip(segment_outcomes) {
                for hit in &outcome.hits {
                    let score = if reverify {
                        let row = self.table.row(hit.row).expect("hit rows are live table rows");
                        metric.score(&row, query)
                    } else {
                        hit.score
                    };
                    heap_push(Scored { row: hit.row, score });
                }
                segments.push(SegmentRun { rows: segment.range(), trace: outcome.trace });
            }
        };
        let hits = match objective {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(k);
                offer(&mut |s| heap.push(s.row, s.score));
                heap.into_sorted_vec()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(k);
                offer(&mut |s| heap.push(s.row, s.score));
                heap.into_sorted_vec()
            }
        };
        QueryOutcome { hits, segments }
    }

    /// Convenience: the sequential reference answer for the same rule and
    /// parameters, computed by the classic single-threaded [`BondSearcher`]
    /// (used by tests, benches and doc examples to demonstrate equivalence
    /// and rank-correctness).
    pub fn sequential_reference(&self, query: &[f64], k: usize) -> Result<Vec<Scored>> {
        let searcher = BondSearcher::new(self.table);
        let metric = self.rule.make_metric();
        let mut rule = self.rule.make_rule();
        let outcome = searcher.search_with_rule(
            query,
            metric.as_ref(),
            rule.as_mut(),
            k,
            self.rule.weights(),
            &self.params,
        )?;
        Ok(outcome.hits)
    }
}
