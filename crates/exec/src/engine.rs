//! The parallel, partitioned execution engine.
//!
//! An [`Engine`] is built once per table and then serves requests for as
//! long as the process lives: it *owns* its [`DecomposedTable`] behind an
//! [`Arc`], stores its partition boundaries as lifetime-free
//! [`SegmentSpec`]s plus cached [`SegmentStats`], and materialises the
//! zero-copy [`Segment`] views internally, per call. The engine is
//! `Send + Sync + 'static` and cheaply clonable (a clone is one `Arc`
//! bump), so it can be stored in a server struct, shared across request
//! threads, or handed to a background worker — the shape a long-lived
//! serving system needs (see [`crate::service`]).
//!
//! Execution is per-request heterogeneous: a [`RequestBatch`] of
//! [`QuerySpec`]s may mix `k`s, pruning rules and planners freely. All
//! `queries × segments` searches still run in one worker-pool pass, each
//! query gets its own shared-κ cell, and every query's per-segment top-k
//! heaps merge into its final answer.
//!
//! *What to scan, in which dimension order, with which block schedule* is a
//! per-segment [`SegmentPlan`] chosen by the query's effective
//! [`PlannerKind`]:
//!
//! * [`PlannerKind::Uniform`] gives every segment the same plan (the
//!   engine's `BondParams`), every segment refines its survivors to exact
//!   scores in the same dimension order the sequential searcher uses, and
//!   the merged top-k is bit-identical to a sequential [`BondSearcher`]
//!   search over the whole table.
//! * [`PlannerKind::Adaptive`] derives each segment's plan from its cached
//!   [`SegmentStats`] and additionally skips whole segments whose zone-map
//!   envelope bound provably cannot reach the current κ — without touching
//!   any of the segment's columns. Per-segment refinement orders then
//!   differ, so the merge re-verifies exact scores (fixed, natural
//!   summation order) and breaks ties deterministically on the row id:
//!   rank-correct rather than bit-identical.

use crate::batch::{BatchOutcome, QueryOutcome, QuerySpec, RequestBatch, SegmentRun};
use crate::kappa::SharedKappa;
use crate::planner::{AdaptivePlanner, PlannerKind};
use crate::rules::RuleKind;
use bond::{
    prune_slack, search_segment, BondError, BondParams, BondSearcher, DimensionOrdering, KappaCell,
    PruneTrace, Result, SearchOutcome, SegmentContext, SegmentPlan,
};
use bond_metrics::{DecomposableMetric, Objective};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use vdstore::persist::{open_store, save_store, validate_store_inputs, PersistedStore};
use vdstore::topk::Scored;
use vdstore::{
    DecomposedTable, Envelope, Segment, SegmentSpec, SegmentStats, StorageBackend, TopKLargest,
    TopKSmallest,
};

/// Builds an [`Engine`] for one table.
///
/// Construction is fallible: [`EngineBuilder::build`] validates the
/// configuration (`partitions`/`threads` must be non-zero, a weighted
/// default rule must carry weights valid for the table) and returns
/// [`BondError::InvalidParams`] / [`BondError::WeightDimensionMismatch`]
/// instead of silently clamping or panicking mid-search.
#[derive(Debug)]
pub struct EngineBuilder {
    table: Arc<DecomposedTable>,
    partitions: usize,
    threads: usize,
    params: BondParams,
    rule: RuleKind,
    share_kappa: bool,
    planner: PlannerKind,
    /// Partition boundaries + statistics preloaded from a persisted store's
    /// footer; when present, [`EngineBuilder::build`] uses them verbatim
    /// instead of partitioning and scanning the table.
    preloaded: Option<(Vec<SegmentSpec>, Vec<SegmentStats>)>,
}

impl EngineBuilder {
    /// Starts a builder over a store reopened from disk, using the backend
    /// selected by the `VDSTORE_BACKEND` environment variable (or the
    /// platform default — memory-mapped where supported). See
    /// [`EngineBuilder::open_with`].
    pub fn open(path: impl AsRef<Path>) -> Result<EngineBuilder> {
        Self::open_with(path, StorageBackend::from_env())
    }

    /// Starts a builder over a store reopened from disk with an explicit
    /// [`StorageBackend`].
    ///
    /// The builder's partition boundaries, per-segment statistics and
    /// zone-map envelopes come straight from the store's footer, so the
    /// engine [`EngineBuilder::build`] returns can plan adaptively and skip
    /// whole segments *before a single column data page has been read* —
    /// under [`StorageBackend::Mapped`] the fragments fault in lazily as
    /// searches touch them. The result is bit-identical to an engine built
    /// over the original in-memory table with the same partition count
    /// (footer statistics are bit-exact copies of the cached build-time
    /// statistics).
    ///
    /// # Errors
    ///
    /// [`BondError::Storage`] when the file cannot be opened, is corrupt,
    /// truncated, or written by an unsupported format version.
    pub fn open_with(path: impl AsRef<Path>, backend: StorageBackend) -> Result<EngineBuilder> {
        let store = open_store(path.as_ref(), backend).map_err(BondError::Storage)?;
        Ok(Self::from_store(store))
    }

    /// Starts a builder over an already-opened [`PersistedStore`] (e.g. one
    /// inspected or filtered before serving).
    pub fn from_store(store: PersistedStore) -> EngineBuilder {
        let PersistedStore { table, specs, stats, .. } = store;
        let mut builder = Engine::builder(table);
        builder.partitions = specs.len().max(1);
        builder.preloaded = Some((specs, stats));
        builder
    }

    /// Number of row-range segments the table is split into. Defaults to
    /// the machine's available parallelism; `0` is rejected at
    /// [`EngineBuilder::build`]. On a builder opened from a persisted store
    /// this *discards* the store's boundaries and footer statistics:
    /// [`EngineBuilder::build`] re-partitions and recomputes statistics,
    /// scanning every column (faulting in all pages of a mapped store).
    #[must_use]
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self.preloaded = None;
        self
    }

    /// Number of worker threads (no implicit cap — oversubscribing the
    /// machine is the caller's choice). Defaults to the machine's available
    /// parallelism; `1` executes inline without spawning; `0` is rejected
    /// at [`EngineBuilder::build`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Search parameters (schedule, ordering, materialisation threshold).
    ///
    /// `refine_survivors` is forced to `true`: merging per-segment answers
    /// requires exact scores, and exact scores are also what makes the
    /// uniform parallel result bit-identical to the sequential one. For a
    /// query whose effective rule is weighted, any ordering other than
    /// [`DimensionOrdering::Explicit`] is replaced by the weighted default
    /// ordering — the same rewrite the sequential weighted entry points
    /// apply (and what keeps [`Engine::sequential_reference`] comparable);
    /// pass an explicit permutation to pin a specific order. Note that
    /// under [`PlannerKind::Adaptive`] the ordering and schedule come from
    /// each segment's statistics instead — the params' ordering/schedule
    /// (explicit or not) only govern the `Uniform` planner and the
    /// sequential reference.
    #[must_use]
    pub fn params(mut self, params: BondParams) -> Self {
        self.params = params;
        self
    }

    /// Which metric + pruning criterion to serve by default — a
    /// [`QuerySpec::rule`] override replaces it per query. Defaults to
    /// [`RuleKind::HistogramHq`]. Weighted kinds switch non-`Explicit`
    /// orderings to [`DimensionOrdering::WeightedQueryDescending`] per
    /// query (see [`EngineBuilder::params`]).
    #[must_use]
    pub fn rule(mut self, rule: RuleKind) -> Self {
        self.rule = rule;
        self
    }

    /// Whether segments of one query share their pruning bound κ through an
    /// atomic cell (default `true`). Disabling isolates the segments — same
    /// answers, strictly less pruning (and no adaptive segment skipping,
    /// which consumes the shared κ); useful for measuring the κ-sharing
    /// benefit.
    #[must_use]
    pub fn share_kappa(mut self, share: bool) -> Self {
        self.share_kappa = share;
        self
    }

    /// How segment plans are chosen by default (default
    /// [`PlannerKind::Uniform`]) — a [`QuerySpec::planner`] override
    /// replaces it per query. [`PlannerKind::Adaptive`] picks each
    /// segment's dimension order and block schedule from its statistics —
    /// overriding the params' ordering/schedule — and enables κ-aware
    /// whole-segment skipping.
    #[must_use]
    pub fn planner(mut self, planner: PlannerKind) -> Self {
        self.planner = planner;
        self
    }

    /// Finishes the build: validates the configuration, partitions the
    /// table, and computes the per-segment statistics (and their zone-map
    /// envelopes) once — every query of every future batch reuses them.
    ///
    /// # Errors
    ///
    /// [`BondError::InvalidParams`] when `partitions` or `threads` is zero
    /// or the default rule carries invalid weight values;
    /// [`BondError::WeightDimensionMismatch`] when the default rule's
    /// weights do not match the table's dimensionality.
    pub fn build(self) -> Result<Engine> {
        if self.partitions == 0 {
            return Err(BondError::InvalidParams("partitions must be non-zero".into()));
        }
        if self.threads == 0 {
            return Err(BondError::InvalidParams("threads must be non-zero".into()));
        }
        let dims = self.table.dims();
        if let Some(w) = self.rule.weights() {
            if w.len() != dims {
                return Err(BondError::WeightDimensionMismatch { expected: dims, actual: w.len() });
            }
        }
        self.rule.validate(dims).map_err(BondError::InvalidParams)?;
        let mut params = self.params;
        params.refine_survivors = true;
        let (specs, stats) = match self.preloaded {
            Some((specs, stats)) => {
                // A store's footer was validated structurally at open; the
                // same shared validator re-checks layouts handed to the
                // builder directly (e.g. a hand-assembled `PersistedStore`),
                // so smuggled boundaries cannot break the merge.
                validate_store_inputs(&self.table, &specs, &stats).map_err(BondError::Storage)?;
                (specs, stats)
            }
            None => {
                let specs = self.table.partition_specs(self.partitions);
                let stats: Vec<SegmentStats> = specs
                    .iter()
                    .map(|s| s.view(&self.table).expect("spec in range").stats())
                    .collect();
                (specs, stats)
            }
        };
        let envelopes: Vec<Option<Envelope>> = stats.iter().map(SegmentStats::envelope).collect();
        Ok(Engine {
            inner: Arc::new(EngineInner {
                table: self.table,
                specs,
                stats,
                envelopes,
                threads: self.threads,
                params,
                rule: self.rule,
                share_kappa: self.share_kappa,
                planner: self.planner,
                row_sums: OnceLock::new(),
            }),
        })
    }
}

/// The engine's shared state: everything a worker thread needs, owned.
#[derive(Debug)]
struct EngineInner {
    table: Arc<DecomposedTable>,
    /// Partition boundaries, stored lifetime-free; [`Segment`] views are
    /// materialised from these per call.
    specs: Vec<SegmentSpec>,
    /// Per-segment statistics, computed once at build; the input of the
    /// adaptive planner and the zone-map skip checks.
    stats: Vec<SegmentStats>,
    /// Per-segment zone maps derived from `stats`, cached so batches do not
    /// re-derive them on every [`Engine::execute`] call.
    envelopes: Vec<Option<Envelope>>,
    threads: usize,
    params: BondParams,
    rule: RuleKind,
    share_kappa: bool,
    planner: PlannerKind,
    /// Full-table `T(x)`, materialised lazily the first time any request's
    /// rule needs it; workers slice it per segment.
    row_sums: OnceLock<Vec<f64>>,
}

/// A query-execution engine bound to one decomposed table, which it owns.
///
/// Construction partitions the table and pre-materialises shared state;
/// [`Engine::execute`] then serves whole (possibly heterogeneous) batches,
/// [`Engine::search`] single queries. The engine is `Send + Sync +
/// 'static` and [`Engine::clone`] is one `Arc` bump — store it in a
/// server, share it across threads, move it into workers.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

/// Everything `execute` resolves once per query before scheduling: the
/// effective rule/planner, the metric instance, the uniform plan (when the
/// query plans uniformly) and the shared κ cell.
struct ResolvedQuery<'b> {
    spec: &'b QuerySpec,
    rule: &'b RuleKind,
    planner: PlannerKind,
    metric: Box<dyn DecomposableMetric>,
    objective: Objective,
    uniform_plan: Option<SegmentPlan>,
    /// `T(q)` for the total-mass skip bound (adaptive planning only).
    query_sum: f64,
    kappa: Option<SharedKappa>,
}

impl Engine {
    /// Starts building an engine over `table` with default settings.
    ///
    /// Accepts the table by value or already wrapped in an [`Arc`]; either
    /// way the engine takes (shared) ownership — no lifetime ties the
    /// engine to a stack frame.
    pub fn builder(table: impl Into<Arc<DecomposedTable>>) -> EngineBuilder {
        let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineBuilder {
            table: table.into(),
            partitions: parallelism,
            threads: parallelism,
            params: BondParams::default(),
            rule: RuleKind::HistogramHq,
            share_kappa: true,
            planner: PlannerKind::Uniform,
            preloaded: None,
        }
    }

    /// Persists the engine's table, partition boundaries and cached
    /// per-segment statistics as a v2 segment store at `path`. The file can
    /// be reopened — in this or any other process — with
    /// [`EngineBuilder::open`], yielding an engine that answers
    /// bit-identically (uniform planning) without recomputing anything.
    ///
    /// # Errors
    ///
    /// [`BondError::Storage`] on I/O failure.
    pub fn persist(&self, path: impl AsRef<Path>) -> Result<()> {
        save_store(&self.inner.table, &self.inner.specs, &self.inner.stats, path.as_ref())
            .map_err(BondError::Storage)
    }

    /// The storage backend serving the engine's column data:
    /// [`StorageBackend::Mapped`] for an engine reopened from a store with
    /// mapped columns, [`StorageBackend::Heap`] otherwise.
    pub fn storage_backend(&self) -> StorageBackend {
        self.inner.table.backend()
    }

    /// The table this engine serves.
    pub fn table(&self) -> &DecomposedTable {
        &self.inner.table
    }

    /// The engine's partition boundaries, in row order.
    pub fn segment_specs(&self) -> &[SegmentSpec] {
        &self.inner.specs
    }

    /// Number of partitions actually in use (may be lower than requested
    /// for tiny tables).
    pub fn partitions(&self) -> usize {
        self.inner.specs.len()
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// The default metric + rule the engine serves when a [`QuerySpec`]
    /// does not override it.
    pub fn rule(&self) -> &RuleKind {
        &self.inner.rule
    }

    /// The default planning policy.
    pub fn planner(&self) -> PlannerKind {
        self.inner.planner
    }

    /// The effective search parameters.
    pub fn params(&self) -> &BondParams {
        &self.inner.params
    }

    /// Per-dimension statistics of every segment — the per-partition view
    /// of the collection's distribution and the input of the adaptive
    /// planner. Computed once at build time and cached; calls are free.
    pub fn segment_stats(&self) -> &[SegmentStats] {
        &self.inner.stats
    }

    /// The `BondParams` a query executing under `rule` effectively uses:
    /// the engine's params, with non-explicit orderings switched to the
    /// weighted default ordering for weighted rules — the same rewrite the
    /// sequential weighted entry points apply.
    fn params_for(&self, rule: &RuleKind) -> BondParams {
        let mut params = self.inner.params.clone();
        if rule.weights().is_some() && !matches!(params.ordering, DimensionOrdering::Explicit(_)) {
            params.ordering = DimensionOrdering::WeightedQueryDescending;
        }
        params
    }

    /// Checks one request against this engine's table and the spec's
    /// effective rule, without executing anything: the up-front validation
    /// [`Engine::execute`] applies to every spec, exposed so admission
    /// control (e.g. [`crate::service::Server::submit`]) can reject a bad
    /// request immediately instead of poisoning a coalesced batch.
    pub fn validate(&self, spec: &QuerySpec) -> Result<()> {
        let dims = self.inner.table.dims();
        let live = self.inner.table.live_rows();
        if spec.vector().len() != dims {
            return Err(BondError::QueryDimensionMismatch {
                expected: dims,
                actual: spec.vector().len(),
            });
        }
        if spec.k() == 0 || spec.k() > live {
            return Err(BondError::InvalidK { k: spec.k(), rows: live });
        }
        let rule = spec.rule_override().unwrap_or(&self.inner.rule);
        if let Some(w) = rule.weights() {
            if w.len() != dims {
                return Err(BondError::WeightDimensionMismatch { expected: dims, actual: w.len() });
            }
        }
        // Invalid weight *values* (directly constructed variants bypassing
        // the validating constructors) error here instead of panicking in
        // `make_metric` during execution.
        rule.validate(dims).map_err(BondError::InvalidParams)?;
        Ok(())
    }

    /// Runs one k-NN query under the engine defaults; equivalent to a
    /// single-spec [`Engine::execute`].
    pub fn search(&self, query: &[f64], k: usize) -> Result<QueryOutcome> {
        self.search_spec(&QuerySpec::new(query.to_vec(), k))
    }

    /// Runs one request, honouring its per-query overrides; equivalent to a
    /// single-spec [`Engine::execute`].
    pub fn search_spec(&self, spec: &QuerySpec) -> Result<QueryOutcome> {
        let batch = RequestBatch::single(spec.clone());
        let mut outcome = self.execute(&batch)?;
        Ok(outcome.queries.pop().expect("one outcome per query"))
    }

    /// Executes a whole batch: all `queries × segments` searches are
    /// scheduled on one worker pool, per-query setup (effective rule and
    /// planner, segment plans, κ cells) is done once, and each query's
    /// per-segment answers are merged into its own top-`k`. Specs may mix
    /// `k`s, rules and planners freely — heterogeneity costs nothing
    /// beyond the per-query setup it always required. Under adaptive
    /// planning, segments whose zone-map bound cannot reach the query's
    /// current κ are skipped entirely (their [`SegmentRun::trace`] reports
    /// `segment_skipped`).
    ///
    /// Every spec is validated before any work starts; the first invalid
    /// spec fails the whole call.
    pub fn execute(&self, batch: &RequestBatch) -> Result<BatchOutcome> {
        let inner = &*self.inner;
        for spec in batch.specs() {
            self.validate(spec)?;
        }
        if batch.is_empty() {
            return Ok(BatchOutcome { queries: Vec::new() });
        }

        // Materialise the zero-copy segment views for this call.
        let segments: Vec<Segment<'_>> = inner
            .specs
            .iter()
            .map(|s| s.view(&inner.table).expect("specs partition this table"))
            .collect();
        let n_segments = segments.len();

        // Per-query setup, done once and shared by every segment worker:
        // the effective rule/planner, the metric, the uniform plan and
        // (optionally) the κ cell. (Adaptive plans are per-(query, segment)
        // values derived inside the task itself — on the worker pool, and
        // only for segments the zone-map check does not skip.)
        let resolved: Vec<ResolvedQuery<'_>> = batch
            .specs()
            .iter()
            .map(|spec| {
                let rule = spec.rule_override().unwrap_or(&inner.rule);
                let planner = spec.planner_override().unwrap_or(inner.planner);
                let metric = rule.make_metric();
                let objective = rule.objective();
                let uniform_plan = (planner == PlannerKind::Uniform).then(|| {
                    let params = self.params_for(rule);
                    SegmentPlan::uniform(&params, spec.vector(), rule.weights(), inner.table.dims())
                });
                let query_sum = match planner {
                    PlannerKind::Adaptive => spec.vector().iter().sum(),
                    PlannerKind::Uniform => 0.0,
                };
                let kappa = inner.share_kappa.then(|| SharedKappa::new(objective));
                ResolvedQuery {
                    spec,
                    rule,
                    planner,
                    metric,
                    objective,
                    uniform_plan,
                    query_sum,
                    kappa,
                }
            })
            .collect();

        // The `T(x)` table, materialised once per engine the first time any
        // request's rule needs it.
        let row_sums: Option<&[f64]> = resolved
            .iter()
            .any(|rq| rq.rule.needs_total_mass())
            .then(|| inner.row_sums.get_or_init(|| inner.table.row_sums()).as_slice());

        let n_tasks = batch.len() * n_segments;
        let slots: Vec<OnceLock<Result<SearchOutcome>>> =
            (0..n_tasks).map(|_| OnceLock::new()).collect();

        let run_task = |task: usize| {
            let qi = task / n_segments;
            let si = task % n_segments;
            let segment = &segments[si];
            let rq = &resolved[qi];
            let query = rq.spec.vector();
            let k = rq.spec.k();
            let cell = rq.kappa.as_ref();

            if rq.planner == PlannerKind::Adaptive {
                if let Some(outcome) = self.try_skip_segment(si, rq) {
                    slots[task].set(Ok(outcome)).expect("each task is claimed exactly once");
                    return;
                }
            }

            let mut rule = rq.rule.make_rule();
            let adaptive_plan;
            let plan = match rq.planner {
                PlannerKind::Uniform => {
                    rq.uniform_plan.as_ref().expect("uniform queries carry a plan")
                }
                PlannerKind::Adaptive => {
                    adaptive_plan = AdaptivePlanner.plan(
                        &inner.stats[si],
                        query,
                        rq.rule.weights(),
                        rq.objective,
                    );
                    &adaptive_plan
                }
            };
            let ctx = SegmentContext {
                kappa: cell.map(|cell| cell as &dyn KappaCell),
                row_sums: row_sums.map(|sums| &sums[segment.range()]),
                plan: Some(plan),
            };
            let outcome = search_segment(
                segment,
                query,
                rq.metric.as_ref(),
                rule.as_mut(),
                k,
                rq.rule.weights(),
                &inner.params,
                &ctx,
            );
            if rq.planner == PlannerKind::Adaptive {
                // The segment's k-th best *exact* score is a valid κ (k
                // witnesses reach it); publishing it arms the zone-map skip
                // for segments that have not started yet.
                if let (Some(cell), Ok(outcome)) = (cell, &outcome) {
                    if outcome.hits.len() >= k {
                        cell.tighten(outcome.hits[k - 1].score);
                    }
                }
            }
            slots[task].set(outcome).expect("each task is claimed exactly once");
        };

        let workers = inner.threads.min(n_tasks);
        if workers <= 1 {
            for task in 0..n_tasks {
                run_task(task);
            }
        } else {
            let next_task = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let task = next_task.fetch_add(1, Ordering::Relaxed);
                        if task >= n_tasks {
                            break;
                        }
                        run_task(task);
                    });
                }
            });
        }

        let mut per_task =
            slots.into_iter().map(|slot| slot.into_inner().expect("all tasks completed"));

        let mut queries = Vec::with_capacity(batch.len());
        for rq in &resolved {
            let segment_outcomes =
                per_task.by_ref().take(n_segments).collect::<Result<Vec<SearchOutcome>>>()?;
            queries.push(self.merge_query(rq, &segments, segment_outcomes));
        }
        Ok(BatchOutcome { queries })
    }

    /// The zone-map check: when the query's κ is already tighter than the
    /// best score any vector inside the segment's envelope could reach, the
    /// segment contributes nothing and is skipped without touching its
    /// columns. Two independent per-segment bounds combine (the tighter
    /// wins): the per-dimension value envelope and the row-sum (total-mass)
    /// envelope. The same ε-slack as candidate pruning keeps boundary ties
    /// safe.
    fn try_skip_segment(&self, si: usize, rq: &ResolvedQuery<'_>) -> Option<SearchOutcome> {
        let kappa = rq.kappa.as_ref()?.get()?;
        let (mins, maxs) = self.inner.envelopes[si].as_ref()?;
        let query = rq.spec.vector();
        let mut optimistic = rq.metric.envelope_best_score(query, mins, maxs);
        let stats = &self.inner.stats[si];
        if let Some(mass_bound) = rq.metric.mass_best_score(
            rq.query_sum,
            stats.row_sum_min,
            stats.row_sum_max,
            query.len(),
        ) {
            optimistic = match rq.objective {
                Objective::Maximize => optimistic.min(mass_bound),
                Objective::Minimize => optimistic.max(mass_bound),
            };
        }
        let slack = prune_slack(kappa);
        let skip = match rq.objective {
            Objective::Maximize => optimistic < kappa - slack,
            Objective::Minimize => optimistic > kappa + slack,
        };
        skip.then(|| SearchOutcome {
            hits: Vec::new(),
            trace: PruneTrace { segment_skipped: true, ..PruneTrace::default() },
        })
    }

    /// Merges per-segment outcomes (global row ids) into the query's global
    /// top-k.
    ///
    /// Under uniform planning every segment refined in the same dimension
    /// order, so scores are directly comparable and the k best under the
    /// total `(score, row)` order match the sequential searcher bit for
    /// bit. Under adaptive planning the refinement orders differ per
    /// segment, so every candidate hit's exact score is re-verified in one
    /// fixed (natural) summation order before ranking — that, plus the
    /// deterministic `RowId` tie-break, makes the merge rank-correct
    /// irrespective of each segment's plan, up to floating-point
    /// indistinguishability: two *distinct* rows whose exact scores differ
    /// by less than summation-order drift (a few ulps) may rank either way
    /// at a segment's k-cutoff. Exactly equal rows (duplicates) always
    /// order by row id, in both engines and the sequential reference.
    fn merge_query(
        &self,
        rq: &ResolvedQuery<'_>,
        segments: &[Segment<'_>],
        segment_outcomes: Vec<SearchOutcome>,
    ) -> QueryOutcome {
        let reverify = rq.planner == PlannerKind::Adaptive;
        let query = rq.spec.vector();
        let k = rq.spec.k();
        let mut runs = Vec::with_capacity(segment_outcomes.len());
        let offer = |heap_push: &mut dyn FnMut(Scored)| {
            for (segment, outcome) in segments.iter().zip(segment_outcomes) {
                for hit in &outcome.hits {
                    let score = if reverify {
                        let row =
                            self.inner.table.row(hit.row).expect("hit rows are live table rows");
                        rq.metric.score(&row, query)
                    } else {
                        hit.score
                    };
                    heap_push(Scored { row: hit.row, score });
                }
                runs.push(SegmentRun { rows: segment.range(), trace: outcome.trace });
            }
        };
        let hits = match rq.objective {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(k);
                offer(&mut |s| heap.push(s.row, s.score));
                heap.into_sorted_vec()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(k);
                offer(&mut |s| heap.push(s.row, s.score));
                heap.into_sorted_vec()
            }
        };
        QueryOutcome { hits, segments: runs }
    }

    /// Convenience: the sequential reference answer for the engine's
    /// default rule and parameters, computed by the classic single-threaded
    /// [`BondSearcher`] (used by tests, benches and doc examples to
    /// demonstrate equivalence and rank-correctness).
    pub fn sequential_reference(&self, query: &[f64], k: usize) -> Result<Vec<Scored>> {
        self.sequential_reference_spec(&QuerySpec::new(query.to_vec(), k))
    }

    /// The sequential reference answer for one request, honouring its
    /// per-query rule override (the planner override is irrelevant — the
    /// reference is always the classic full-table scan).
    pub fn sequential_reference_spec(&self, spec: &QuerySpec) -> Result<Vec<Scored>> {
        self.validate(spec)?;
        let rule = spec.rule_override().unwrap_or(&self.inner.rule);
        let params = self.params_for(rule);
        let searcher = BondSearcher::new(&self.inner.table);
        let metric = rule.make_metric();
        let mut rule_instance = rule.make_rule();
        let outcome = searcher.search_with_rule(
            spec.vector(),
            metric.as_ref(),
            rule_instance.as_mut(),
            spec.k(),
            rule.weights(),
            &params,
        )?;
        Ok(outcome.hits)
    }
}
