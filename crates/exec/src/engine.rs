//! The parallel, partitioned execution engine.
//!
//! An [`Engine`] is built once per table and then serves requests for as
//! long as the process lives: it *owns* its [`DecomposedTable`] behind an
//! [`Arc`], stores its partition boundaries as lifetime-free
//! [`SegmentSpec`]s plus cached [`SegmentStats`], and materialises the
//! zero-copy [`Segment`] views internally, per call. The engine is
//! `Send + Sync + 'static` and cheaply clonable (a clone is one `Arc`
//! bump), so it can be stored in a server struct, shared across request
//! threads, or handed to a background worker — the shape a long-lived
//! serving system needs (see [`crate::service`]).
//!
//! Execution is per-request heterogeneous: a [`RequestBatch`] of
//! [`QuerySpec`]s may mix `k`s, pruning rules and planners freely. All
//! `queries × segments` searches still run in one worker-pool pass, each
//! query gets its own shared-κ cell, and every query's per-segment top-k
//! heaps merge into its final answer.
//!
//! *What to scan, in which dimension order, with which block schedule* is a
//! per-segment [`SegmentPlan`] chosen by the query's effective
//! [`PlannerKind`]:
//!
//! * [`PlannerKind::Uniform`] gives every segment the same plan (the
//!   engine's `BondParams`), every segment refines its survivors to exact
//!   scores in the same dimension order the sequential searcher uses, and
//!   the merged top-k is bit-identical to a sequential [`BondSearcher`]
//!   search over the whole table.
//! * [`PlannerKind::Adaptive`] derives each segment's plan from its cached
//!   [`SegmentStats`] and additionally skips whole segments whose zone-map
//!   envelope bound provably cannot reach the current κ — without touching
//!   any of the segment's columns. Per-segment refinement orders then
//!   differ, so the merge re-verifies exact scores (fixed, natural
//!   summation order) and breaks ties deterministically on the row id:
//!   rank-correct rather than bit-identical.
//! * [`PlannerKind::Feedback`] additionally consults the engine's
//!   [`ExecFeedback`] store — lock-free per-segment accumulators into
//!   which *every* executed search folds its pruning trace (and every
//!   zone-map skip and merge miss is counted) — re-ranking each segment's
//!   scan order toward dimensions that observably pruned and shrinking
//!   warmups toward observed first-effective-prune depths. Cold segments
//!   plan exactly like `Adaptive`; the same merge keeps answers
//!   rank-correct. [`Engine::persist`] writes the learned state alongside
//!   the store footer, so a reopened engine starts warm.

use crate::batch::{
    BatchOutcome, MultiFeatureSpec, QueryKind, QueryOutcome, QuerySpec, RequestBatch, ScanMode,
    SegmentRun,
};
use crate::kappa::SharedKappa;
use crate::planner::PlannerKind;
use crate::rules::RuleKind;
use bond::quantfilter;
use bond::{
    prune_slack, search_segment, BondError, BondParams, BondSearcher, CostModel, DimensionOrdering,
    ExecFeedback, FeatureQuery, FeedbackSnapshot, KappaCell, Kernel, MultiFeatureContext,
    MultiFeatureOutcome, MultiFeatureSearcher, PruneTrace, Result, SearchOutcome, SegmentContext,
    SegmentFeedbackSnapshot, SegmentPlan,
};
use bond_metrics::{DecomposableMetric, Objective};
use bond_obs::{names, Counter, Gauge, Histogram, MetricsRegistry, Span};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use vdstore::persist::{open_store, save_store_with_codes, validate_store_inputs, PersistedStore};
use vdstore::topk::Scored;
use vdstore::{
    Advice, Bitmap, DecomposedTable, Envelope, Segment, SegmentSpec, SegmentStats, StorageBackend,
    StoreCodes, TopKLargest, TopKSmallest, VdError,
};

/// The pruning-rule names the engine pre-registers per-rule search
/// counters for (`engine.rule.<name>.searches`). Bound scales are
/// incomparable across rules, which is exactly why the counts must not
/// aggregate — see [`bond::PruneTrace::rule`].
const RULE_NAMES: [&str; 6] = ["Hq", "Hh", "Eq", "Ev", "WHq", "WEv"];

/// The engine's pre-registered metric handles: every hot-path emission is
/// a relaxed atomic on one of these, never a registry lock.
#[derive(Debug)]
pub(crate) struct EngineMetrics {
    /// The registry the handles live in (per-engine by default; shared
    /// when [`EngineBuilder::metrics`] injected one).
    pub(crate) registry: MetricsRegistry,
    /// `engine.batch.count` — executed engine passes.
    batches: Counter,
    /// `engine.query.count` — queries answered.
    queries: Counter,
    /// `engine.query.latency_us` — wall time of the engine pass that
    /// answered each query (the latency a submitter observes).
    latency_us: Histogram,
    /// `engine.query.scanned_cells` — `(candidate, dimension)` cells each
    /// query actually evaluated, summed over its segments.
    scanned_cells: Histogram,
    /// `engine.segment.searched` — per-segment scans that ran.
    segment_searched: Counter,
    /// `engine.segment.skipped` — whole-segment zone-map skips.
    segment_skipped: Counter,
    /// `engine.segment.missed` — scanned segments that contributed nothing
    /// to their query's final top-k (work the zone map failed to avoid).
    pub(crate) segment_missed: Counter,
    /// `engine.rule.<name>.searches` — executed scans per pruning rule.
    rule_searches: [(&'static str, Counter); RULE_NAMES.len()],
    /// `planner.feedback.warm_segments` — segments whose feedback store is
    /// warm enough to plan from, as of the last feedback-planned batch.
    warm_segments: Gauge,
    /// `planner.cost.abs_rel_error` — |estimated − executed| / executed
    /// work per query, in percent (the cost model's calibration error).
    cost_error: Histogram,
    /// `store.open.cold_us` — wall time of the store open this engine was
    /// built from, when it was.
    open_cold_us: Histogram,
    /// `store.persist.us` — wall time of [`Engine::persist`] calls.
    persist_us: Histogram,
    /// `store.persist.bytes` — bytes written by [`Engine::persist`].
    persist_bytes: Counter,
    /// `engine.quant.filter_cells` — quantized `u8` code cells swept by
    /// first-pass filters and approximate scans.
    quant_filter_cells: Counter,
    /// `engine.quant.refine_rows` — rows that survived a quantized filter
    /// into exact refinement.
    quant_refine_rows: Counter,
    /// `engine.quant.filter_selectivity` — per query, the percentage of
    /// filtered rows that reached the exact phase (lower is better).
    quant_filter_selectivity: Histogram,
    /// `engine.filter.eligible_rows` — rows eligible under predicate
    /// filters (filter ∧ live), summed over scanned filtered segments.
    filter_eligible_rows: Counter,
    /// `engine.filter.segments_empty` — segments skipped outright because a
    /// predicate filter left none of their rows eligible.
    filter_segments_empty: Counter,
    /// `engine.multifeature.searches` — synchronized multi-feature segment
    /// scans executed.
    multifeature_searches: Counter,
    /// `engine.kernel.<label>.sweeps` — quantized code sweeps dispatched to
    /// each scan-kernel flavour (one tick per swept segment).
    kernel_sweeps: [(&'static str, Counter); 3],
}

impl EngineMetrics {
    fn new(registry: MetricsRegistry) -> EngineMetrics {
        let rule_searches =
            RULE_NAMES.map(|name| (name, registry.counter(&names::engine_rule_searches(name))));
        let kernel_sweeps = [
            ("scalar", registry.counter(names::ENGINE_KERNEL_SCALAR_SWEEPS)),
            ("avx2", registry.counter(names::ENGINE_KERNEL_AVX2_SWEEPS)),
            ("neon", registry.counter(names::ENGINE_KERNEL_NEON_SWEEPS)),
        ];
        EngineMetrics {
            batches: registry.counter(names::ENGINE_BATCH_COUNT),
            queries: registry.counter(names::ENGINE_QUERY_COUNT),
            latency_us: registry.histogram(names::ENGINE_QUERY_LATENCY_US),
            scanned_cells: registry.histogram(names::ENGINE_QUERY_SCANNED_CELLS),
            segment_searched: registry.counter(names::ENGINE_SEGMENT_SEARCHED),
            segment_skipped: registry.counter(names::ENGINE_SEGMENT_SKIPPED),
            segment_missed: registry.counter(names::ENGINE_SEGMENT_MISSED),
            rule_searches,
            warm_segments: registry.gauge(names::PLANNER_FEEDBACK_WARM_SEGMENTS),
            cost_error: registry.histogram(names::PLANNER_COST_ABS_REL_ERROR),
            open_cold_us: registry.histogram(names::STORE_OPEN_COLD_US),
            persist_us: registry.histogram(names::STORE_PERSIST_US),
            persist_bytes: registry.counter(names::STORE_PERSIST_BYTES),
            quant_filter_cells: registry.counter(names::ENGINE_QUANT_FILTER_CELLS),
            quant_refine_rows: registry.counter(names::ENGINE_QUANT_REFINE_ROWS),
            quant_filter_selectivity: registry.histogram(names::ENGINE_QUANT_FILTER_SELECTIVITY),
            filter_eligible_rows: registry.counter(names::ENGINE_FILTER_ELIGIBLE_ROWS),
            filter_segments_empty: registry.counter(names::ENGINE_FILTER_SEGMENTS_EMPTY),
            multifeature_searches: registry.counter(names::ENGINE_MULTIFEATURE_SEARCHES),
            kernel_sweeps,
            registry,
        }
    }

    fn rule_counter(&self, name: &str) -> Option<&Counter> {
        self.rule_searches.iter().find(|(n, _)| *n == name).map(|(_, c)| c)
    }

    fn kernel_counter(&self, label: &str) -> Option<&Counter> {
        self.kernel_sweeps.iter().find(|(n, _)| *n == label).map(|(_, c)| c)
    }
}

/// Builds an [`Engine`] for one table.
///
/// Construction is fallible: [`EngineBuilder::build`] validates the
/// configuration (`partitions`/`threads` must be non-zero, a weighted
/// default rule must carry weights valid for the table) and returns
/// [`BondError::InvalidParams`] / [`BondError::WeightDimensionMismatch`]
/// instead of silently clamping or panicking mid-search.
#[derive(Debug)]
pub struct EngineBuilder {
    table: Arc<DecomposedTable>,
    partitions: usize,
    threads: usize,
    params: BondParams,
    rule: RuleKind,
    share_kappa: bool,
    planner: PlannerKind,
    scan: ScanMode,
    /// Partition boundaries + statistics preloaded from a persisted store's
    /// footer; when present, [`EngineBuilder::build`] uses them verbatim
    /// instead of partitioning and scanning the table.
    preloaded: Option<(Vec<SegmentSpec>, Vec<SegmentStats>)>,
    /// The opaque learned-state payload from the store's footer, decoded
    /// into the engine's feedback store at [`EngineBuilder::build`].
    preloaded_learned: Option<Vec<u8>>,
    /// Quantized code fragments from the store's footer, seeded into the
    /// engine's code cache at [`EngineBuilder::build`] so the first
    /// quantized scan does not re-encode the table.
    preloaded_codes: Option<StoreCodes>,
    /// The metrics registry the engine emits into; fresh per engine when
    /// not overridden via [`EngineBuilder::metrics`].
    metrics: Option<MetricsRegistry>,
    /// Wall time of the store open this builder came from, recorded as
    /// `store.open.cold_us` at [`EngineBuilder::build`].
    open_micros: Option<u64>,
}

impl EngineBuilder {
    /// Starts a builder over a store reopened from disk, using the backend
    /// selected by the `VDSTORE_BACKEND` environment variable (or the
    /// platform default — memory-mapped where supported). See
    /// [`EngineBuilder::open_with`].
    pub fn open(path: impl AsRef<Path>) -> Result<EngineBuilder> {
        Self::open_with(path, StorageBackend::from_env())
    }

    /// Starts a builder over a store reopened from disk with an explicit
    /// [`StorageBackend`].
    ///
    /// The builder's partition boundaries, per-segment statistics and
    /// zone-map envelopes come straight from the store's footer, so the
    /// engine [`EngineBuilder::build`] returns can plan adaptively and skip
    /// whole segments *before a single column data page has been read* —
    /// under [`StorageBackend::Mapped`] the fragments fault in lazily as
    /// searches touch them. The result is bit-identical to an engine built
    /// over the original in-memory table with the same partition count
    /// (footer statistics are bit-exact copies of the cached build-time
    /// statistics).
    ///
    /// # Errors
    ///
    /// [`BondError::Storage`] when the file cannot be opened, is corrupt,
    /// truncated, or written by an unsupported format version.
    pub fn open_with(path: impl AsRef<Path>, backend: StorageBackend) -> Result<EngineBuilder> {
        let store = open_store(path.as_ref(), backend).map_err(BondError::Storage)?;
        Ok(Self::from_store(store))
    }

    /// Starts a builder over an already-opened [`PersistedStore`] (e.g. one
    /// inspected or filtered before serving).
    pub fn from_store(store: PersistedStore) -> EngineBuilder {
        let PersistedStore { table, specs, stats, learned, codes, open_micros, .. } = store;
        let mut builder = Engine::builder(table);
        builder.partitions = specs.len().max(1);
        builder.preloaded = Some((specs, stats));
        builder.preloaded_learned = learned;
        builder.preloaded_codes = codes;
        builder.open_micros = (open_micros > 0).then_some(open_micros);
        builder
    }

    /// Number of row-range segments the table is split into. Defaults to
    /// the machine's available parallelism; `0` is rejected at
    /// [`EngineBuilder::build`]. On a builder opened from a persisted store
    /// this *discards* the store's boundaries, footer statistics and
    /// learned feedback state: [`EngineBuilder::build`] re-partitions and
    /// recomputes statistics, scanning every column (faulting in all pages
    /// of a mapped store), and the feedback store starts cold.
    #[must_use]
    pub fn partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self.preloaded = None;
        self.preloaded_learned = None;
        self.preloaded_codes = None;
        self
    }

    /// Number of worker threads (no implicit cap — oversubscribing the
    /// machine is the caller's choice). Defaults to the machine's available
    /// parallelism; `1` executes inline without spawning; `0` is rejected
    /// at [`EngineBuilder::build`].
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Search parameters (schedule, ordering, materialisation threshold).
    ///
    /// `refine_survivors` is forced to `true`: merging per-segment answers
    /// requires exact scores, and exact scores are also what makes the
    /// uniform parallel result bit-identical to the sequential one. For a
    /// query whose effective rule is weighted, any ordering other than
    /// [`DimensionOrdering::Explicit`] is replaced by the weighted default
    /// ordering — the same rewrite the sequential weighted entry points
    /// apply (and what keeps [`Engine::sequential_reference`] comparable);
    /// pass an explicit permutation to pin a specific order. Note that
    /// under [`PlannerKind::Adaptive`] the ordering and schedule come from
    /// each segment's statistics instead — the params' ordering/schedule
    /// (explicit or not) only govern the `Uniform` planner and the
    /// sequential reference.
    #[must_use]
    pub fn params(mut self, params: BondParams) -> Self {
        self.params = params;
        self
    }

    /// Which metric + pruning criterion to serve by default — a
    /// [`QuerySpec::rule`] override replaces it per query. Defaults to
    /// [`RuleKind::HistogramHq`]. Weighted kinds switch non-`Explicit`
    /// orderings to [`DimensionOrdering::WeightedQueryDescending`] per
    /// query (see [`EngineBuilder::params`]).
    #[must_use]
    pub fn rule(mut self, rule: RuleKind) -> Self {
        self.rule = rule;
        self
    }

    /// Whether segments of one query share their pruning bound κ through an
    /// atomic cell (default `true`). Disabling isolates the segments — same
    /// answers, strictly less pruning (and no adaptive segment skipping,
    /// which consumes the shared κ); useful for measuring the κ-sharing
    /// benefit.
    #[must_use]
    pub fn share_kappa(mut self, share: bool) -> Self {
        self.share_kappa = share;
        self
    }

    /// How segment plans are chosen by default (default
    /// [`PlannerKind::Uniform`]) — a [`QuerySpec::planner`] override
    /// replaces it per query. [`PlannerKind::Adaptive`] picks each
    /// segment's dimension order and block schedule from its statistics —
    /// overriding the params' ordering/schedule — and enables κ-aware
    /// whole-segment skipping.
    #[must_use]
    pub fn planner(mut self, planner: PlannerKind) -> Self {
        self.planner = planner;
        self
    }

    /// How queries read column data by default (default
    /// [`ScanMode::Exact`]) — a [`QuerySpec::scan_mode`] override replaces
    /// it per query. [`ScanMode::QuantizedFilter`] sweeps the quantized
    /// code companions first and refines only surviving rows exactly
    /// (bit-identical answers); [`ScanMode::ApproximateQuantized`] answers
    /// from codes alone with per-hit error bounds. Codes are built lazily
    /// on first use and cached per bit width; engines opened from a store
    /// persisted with codes reuse the footer's codes directly.
    #[must_use]
    pub fn scan_mode(mut self, scan: ScanMode) -> Self {
        self.scan = scan;
        self
    }

    /// The [`MetricsRegistry`] the engine emits into. Defaults to a fresh
    /// per-engine registry (readable via [`Engine::metrics`]); inject a
    /// shared one to aggregate several engines — or an engine and its
    /// serving front-end — into a single scrape endpoint.
    #[must_use]
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Finishes the build: validates the configuration, partitions the
    /// table, and computes the per-segment statistics (and their zone-map
    /// envelopes) once — every query of every future batch reuses them.
    ///
    /// # Errors
    ///
    /// [`BondError::InvalidParams`] when `partitions` or `threads` is zero
    /// or the default rule carries invalid weight values;
    /// [`BondError::WeightDimensionMismatch`] when the default rule's
    /// weights do not match the table's dimensionality.
    pub fn build(self) -> Result<Engine> {
        if self.partitions == 0 {
            return Err(BondError::InvalidParams("partitions must be non-zero".into()));
        }
        if self.threads == 0 {
            return Err(BondError::InvalidParams("threads must be non-zero".into()));
        }
        let dims = self.table.dims();
        if let Some(w) = self.rule.weights() {
            if w.len() != dims {
                return Err(BondError::WeightDimensionMismatch { expected: dims, actual: w.len() });
            }
        }
        self.rule.validate(dims)?;
        if let ScanMode::ApproximateQuantized { bits } = self.scan {
            if bits == 0 || bits > 8 {
                return Err(BondError::InvalidParams(format!(
                    "approximate scan bits must be in 1..=8, got {bits}"
                )));
            }
        }
        let mut params = self.params;
        params.refine_survivors = true;
        let (specs, stats) = match self.preloaded {
            Some((specs, stats)) => {
                // A store's footer was validated structurally at open; the
                // same shared validator re-checks layouts handed to the
                // builder directly (e.g. a hand-assembled `PersistedStore`),
                // so smuggled boundaries cannot break the merge.
                validate_store_inputs(&self.table, &specs, &stats).map_err(BondError::Storage)?;
                (specs, stats)
            }
            None => {
                let specs = self.table.partition_specs(self.partitions);
                let stats: Vec<SegmentStats> = specs
                    .iter()
                    .map(|s| s.view(&self.table).expect("spec in range").stats())
                    .collect();
                (specs, stats)
            }
        };
        let envelopes: Vec<Option<Envelope>> = stats.iter().map(SegmentStats::envelope).collect();
        let feedback = match self.preloaded_learned {
            Some(bytes) => {
                let snapshot = FeedbackSnapshot::from_bytes(&bytes)?;
                if snapshot.dims != dims || snapshot.segments.len() != specs.len() {
                    return Err(BondError::Storage(VdError::Corrupt(format!(
                        "learned feedback covers {} segments x {} dims, store has {} x {dims}",
                        snapshot.segments.len(),
                        snapshot.dims,
                        specs.len(),
                    ))));
                }
                ExecFeedback::from_snapshot(&snapshot)
            }
            None => ExecFeedback::new(specs.len(), dims),
        };
        let metrics = EngineMetrics::new(self.metrics.unwrap_or_default());
        if let Some(us) = self.open_micros {
            metrics.open_cold_us.record(us);
        }
        // Seed the code cache from the store footer when the persisted
        // codes still describe this engine's partitioning (they do unless
        // the builder re-partitioned, which clears them anyway).
        let mut codes_cache: BTreeMap<u8, Arc<StoreCodes>> = BTreeMap::new();
        let mut adaptive_cache: Option<Arc<StoreCodes>> = None;
        if let Some(codes) = self.preloaded_codes {
            if codes.matches_specs(&specs) {
                match codes.uniform_bits() {
                    Some(bits) => {
                        codes_cache.insert(bits, Arc::new(codes));
                    }
                    // a store persisted by an adaptive engine carries mixed
                    // widths: seed the adaptive slot, not the uniform cache
                    None => adaptive_cache = Some(Arc::new(codes)),
                }
            }
        }
        Ok(Engine {
            inner: Arc::new(EngineInner {
                table: self.table,
                specs,
                stats,
                envelopes,
                threads: self.threads,
                params,
                rule: self.rule,
                share_kappa: self.share_kappa,
                planner: self.planner,
                scan: self.scan,
                cost: CostModel::default(),
                feedback,
                row_sums: OnceLock::new(),
                codes: Mutex::new(codes_cache),
                adaptive_codes: Mutex::new(adaptive_cache),
                metrics,
            }),
        })
    }
}

/// The engine's shared state: everything a worker thread needs, owned.
#[derive(Debug)]
struct EngineInner {
    table: Arc<DecomposedTable>,
    /// Partition boundaries, stored lifetime-free; [`Segment`] views are
    /// materialised from these per call.
    specs: Vec<SegmentSpec>,
    /// Per-segment statistics, computed once at build; the input of the
    /// adaptive planner and the zone-map skip checks.
    stats: Vec<SegmentStats>,
    /// Per-segment zone maps derived from `stats`, cached so batches do not
    /// re-derive them on every [`Engine::execute`] call.
    envelopes: Vec<Option<Envelope>>,
    threads: usize,
    params: BondParams,
    rule: RuleKind,
    share_kappa: bool,
    planner: PlannerKind,
    scan: ScanMode,
    /// The shared cost model: plan derivation for the stats-driven
    /// planners and per-segment cost estimates for admission control.
    cost: CostModel,
    /// The engine's feedback store: every query's pruning trace, zone-map
    /// skip and merge miss folds into these lock-free per-segment
    /// accumulators; the `Feedback` planner and the cost estimates read
    /// them back.
    feedback: ExecFeedback,
    /// Full-table `T(x)`, materialised lazily the first time any request's
    /// rule needs it; workers slice it per segment.
    row_sums: OnceLock<Vec<f64>>,
    /// Quantized code companions, cached per bit width: built lazily on the
    /// first scan that needs them (or seeded from a store footer) and
    /// shared by every later query at that width.
    codes: Mutex<BTreeMap<u8, Arc<StoreCodes>>>,
    /// The adaptively mixed code companion, when the bit-width policy has
    /// produced one: the per-segment widths the feedback store most
    /// recently justified. Rebuilt (and replaced) whenever the policy's
    /// pick changes; `None` until the first mixed pick (all-default picks
    /// live in the uniform `codes` cache instead).
    adaptive_codes: Mutex<Option<Arc<StoreCodes>>>,
    /// Pre-registered metric handles; every hot-path emission is a relaxed
    /// atomic bump on one of these.
    metrics: EngineMetrics,
}

/// A query-execution engine bound to one decomposed table, which it owns.
///
/// Construction partitions the table and pre-materialises shared state;
/// [`Engine::execute`] then serves whole (possibly heterogeneous) batches,
/// [`Engine::search`] single queries. The engine is `Send + Sync +
/// 'static` and [`Engine::clone`] is one `Arc` bump — store it in a
/// server, share it across threads, move it into workers.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

/// Everything `execute` resolves once per query before scheduling: the
/// effective rule/planner, the metric instance, the uniform plan (when the
/// query plans uniformly) and the shared κ cell.
struct ResolvedQuery<'b> {
    spec: &'b QuerySpec,
    rule: &'b RuleKind,
    planner: PlannerKind,
    /// How this query reads column data (engine default or spec override).
    scan: ScanMode,
    /// The quantized code companions quantized scan modes sweep, resolved
    /// (and built, on the cache's first miss) before any task runs.
    codes: Option<Arc<StoreCodes>>,
    metric: Box<dyn DecomposableMetric>,
    objective: Objective,
    /// The eligibility bitmap over the table's full row domain, when the
    /// spec pushed one down; workers slice it per segment.
    filter: Option<&'b Bitmap>,
    uniform_plan: Option<SegmentPlan>,
    /// `T(q)` for the total-mass skip bound (adaptive planning only).
    query_sum: f64,
    /// The cost model's pre-execution work estimate for this request —
    /// compared against the executed work at merge time to feed the
    /// `planner.cost.abs_rel_error` calibration histogram.
    estimate: f64,
    kappa: Option<SharedKappa>,
    /// The segment *visit order* for this query (feedback planning only):
    /// position `p` executes segment `visit_order[p]`. Visiting the most
    /// promising segment first tightens κ immediately, so every later
    /// segment faces the sharpest possible skip bound. `None` visits in
    /// row order.
    visit_order: Option<Vec<usize>>,
}

/// What one `(query, segment)` task leaves in its slot: the search outcome
/// plus the plan it executed (`None` for zone-map skips — no plan was ever
/// derived — and for approximate codes-only scans, which execute no
/// dimension plan).
#[derive(Debug)]
struct TaskOutcome {
    outcome: SearchOutcome,
    plan: Option<SegmentPlan>,
    /// Per-hit absolute error bounds, parallel to the outcome's hits;
    /// `Some` only for approximate codes-only scans.
    error_bounds: Option<Vec<f64>>,
}

impl Engine {
    /// Starts building an engine over `table` with default settings.
    ///
    /// Accepts the table by value or already wrapped in an [`Arc`]; either
    /// way the engine takes (shared) ownership — no lifetime ties the
    /// engine to a stack frame.
    pub fn builder(table: impl Into<Arc<DecomposedTable>>) -> EngineBuilder {
        let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        EngineBuilder {
            table: table.into(),
            partitions: parallelism,
            threads: parallelism,
            params: BondParams::default(),
            rule: RuleKind::HistogramHq,
            share_kappa: true,
            planner: PlannerKind::Uniform,
            scan: ScanMode::Exact,
            preloaded: None,
            preloaded_learned: None,
            preloaded_codes: None,
            metrics: None,
            open_micros: None,
        }
    }

    /// Persists the engine's table, partition boundaries, cached
    /// per-segment statistics *and* accumulated feedback state as a v2
    /// segment store at `path`. The file can be reopened — in this or any
    /// other process — with [`EngineBuilder::open`], yielding an engine
    /// that answers bit-identically (uniform planning) without recomputing
    /// anything and whose `Feedback` planner starts *warm*: everything the
    /// serving process learned about its segments survives the restart.
    ///
    /// The store also carries the engine's 8-bit quantized code companions
    /// (built here if no query has needed them yet), so a reopened engine
    /// serves [`ScanMode::QuantizedFilter`] and
    /// [`ScanMode::ApproximateQuantized`] without re-encoding a single
    /// fragment. Tables whose values cannot be quantized (non-finite
    /// entries) persist without codes, exactly as before.
    ///
    /// # Errors
    ///
    /// [`BondError::Storage`] on I/O failure.
    pub fn persist(&self, path: impl AsRef<Path>) -> Result<()> {
        let span = Span::begin(names::SPAN_STORE_PERSIST);
        let learned = self.inner.feedback.snapshot().to_bytes();
        // Persist the adaptively bit-sized companion: a cold engine's picks
        // are uniformly 8 bits (the pre-adaptive bytes, identically); a
        // warmed engine's mixed widths round-trip via the footer sentinel.
        let codes = self.ensure_adaptive_codes().ok();
        let report = save_store_with_codes(
            &self.inner.table,
            &self.inner.specs,
            &self.inner.stats,
            Some(&learned),
            codes.as_deref(),
            path.as_ref(),
        )
        .map_err(BondError::Storage)?;
        drop(span);
        self.inner.metrics.persist_us.record(report.elapsed_micros);
        self.inner.metrics.persist_bytes.add(report.bytes_written);
        Ok(())
    }

    /// The quantized code companions at `bits` bits per value, built on
    /// first use and cached (seeded from the store footer for engines
    /// opened from a store persisted with codes). Quantized scan modes call
    /// this implicitly; exposed so callers can pre-warm the cache off the
    /// query path.
    ///
    /// # Errors
    ///
    /// [`BondError::InvalidParams`] for a bit width outside 1..=8;
    /// [`BondError::Storage`] when the table cannot be quantized
    /// (non-finite values).
    pub fn ensure_codes(&self, bits: u8) -> Result<Arc<StoreCodes>> {
        if bits == 0 || bits > 8 {
            return Err(BondError::InvalidParams(format!(
                "scan-mode code bits must be in 1..=8, got {bits}"
            )));
        }
        let mut cache = self.inner.codes.lock().expect("code cache lock");
        if let Some(codes) = cache.get(&bits) {
            return Ok(Arc::clone(codes));
        }
        let span = Span::begin(names::SPAN_ENGINE_CODES_BUILD).detail(bits as u64);
        let codes =
            StoreCodes::build(&self.inner.table, &self.inner.specs, &self.inner.stats, bits)
                .map_err(BondError::Storage)?;
        drop(span);
        let codes = Arc::new(codes);
        cache.insert(bits, Arc::clone(&codes));
        Ok(codes)
    }

    /// The per-segment code bit-widths the adaptive policy currently
    /// justifies: [`CostModel::FAST_CODE_BITS`] for segments whose warmed
    /// feedback shows a filter selectivity at or below
    /// [`CostModel::ADAPTIVE_BITS_SELECTIVITY`],
    /// [`CostModel::DEFAULT_CODE_BITS`] everywhere else. This is the pick
    /// [`ScanMode::QuantizedFilter`] queries sweep with and what
    /// [`Engine::explain`] renders per segment.
    pub fn adaptive_code_bits(&self) -> Vec<u8> {
        (0..self.inner.specs.len())
            .map(|si| {
                let snapshot = self.inner.feedback.segment(si).scalar_snapshot();
                self.inner.cost.adaptive_code_bits(Some(&snapshot))
            })
            .collect()
    }

    /// The code companion quantized *filter* scans sweep: per-segment bit
    /// widths picked by [`Engine::adaptive_code_bits`], rebuilt lazily
    /// whenever the policy's pick drifts from the cached build. While every
    /// segment still picks the default width this delegates to the uniform
    /// [`Engine::ensure_codes`] cache — cold engines never pay for a mixed
    /// build. Bit-width only changes bracket tightness, never answers:
    /// survivors are re-scored exactly regardless of the sweep's width.
    ///
    /// # Errors
    ///
    /// [`BondError::Storage`] when the table cannot be quantized
    /// (non-finite values).
    pub fn ensure_adaptive_codes(&self) -> Result<Arc<StoreCodes>> {
        let want = self.adaptive_code_bits();
        if want.iter().all(|&b| b == CostModel::DEFAULT_CODE_BITS) {
            return self.ensure_codes(CostModel::DEFAULT_CODE_BITS);
        }
        // a poisoned cache still holds either `None` or a fully-built
        // companion (the slot is only assigned after a successful build),
        // so recovering the guard is safe
        let mut cache = match self.inner.adaptive_codes.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(codes) = cache.as_ref() {
            if codes.segment_bits() == want.as_slice() {
                return Ok(Arc::clone(codes));
            }
        }
        let span = Span::begin(names::SPAN_ENGINE_CODES_BUILD)
            .detail(*want.iter().min().unwrap_or(&0) as u64);
        let codes =
            StoreCodes::build_mixed(&self.inner.table, &self.inner.specs, &self.inner.stats, &want)
                .map_err(BondError::Storage)?;
        drop(span);
        let codes = Arc::new(codes);
        *cache = Some(Arc::clone(&codes));
        Ok(codes)
    }

    /// The engine's [`MetricsRegistry`]: every executed batch, scan,
    /// zone-map skip, merge miss, cost estimate and persist call lands
    /// here as a counter/gauge/histogram update under a stable dotted
    /// name. Render it with [`MetricsRegistry::render_text`]
    /// (Prometheus exposition text) or [`MetricsRegistry::render_json`]
    /// (one machine-readable line). Fresh per engine unless
    /// [`EngineBuilder::metrics`] injected a shared registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics.registry
    }

    /// The storage backend serving the engine's column data:
    /// [`StorageBackend::Mapped`] for an engine reopened from a store with
    /// mapped columns, [`StorageBackend::Heap`] otherwise.
    pub fn storage_backend(&self) -> StorageBackend {
        self.inner.table.backend()
    }

    /// The table this engine serves.
    pub fn table(&self) -> &DecomposedTable {
        &self.inner.table
    }

    /// The engine's partition boundaries, in row order.
    pub fn segment_specs(&self) -> &[SegmentSpec] {
        &self.inner.specs
    }

    /// Number of partitions actually in use (may be lower than requested
    /// for tiny tables).
    pub fn partitions(&self) -> usize {
        self.inner.specs.len()
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// The default metric + rule the engine serves when a [`QuerySpec`]
    /// does not override it.
    pub fn rule(&self) -> &RuleKind {
        &self.inner.rule
    }

    /// The default planning policy.
    pub fn planner(&self) -> PlannerKind {
        self.inner.planner
    }

    /// The default scan mode (how queries read column data unless a
    /// [`QuerySpec::scan_mode`] override says otherwise).
    pub fn scan_mode(&self) -> ScanMode {
        self.inner.scan
    }

    /// The effective search parameters.
    pub fn params(&self) -> &BondParams {
        &self.inner.params
    }

    /// Per-dimension statistics of every segment — the per-partition view
    /// of the collection's distribution and the input of the adaptive
    /// planner. Computed once at build time and cached; calls are free.
    pub fn segment_stats(&self) -> &[SegmentStats] {
        &self.inner.stats
    }

    /// The cost model shared by the planners, the feedback folds and the
    /// admission-control estimates.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// A plain-data snapshot of the engine's accumulated execution
    /// feedback: per segment, how often it was searched / skipped /
    /// scanned-in-vain, which dimensions actually pruned, the observed
    /// warmup depths and survivor fractions. This is what
    /// [`PlannerKind::Feedback`] plans from, what [`Engine::persist`]
    /// writes alongside the store footer, and the observability hook for
    /// the ROADMAP's re-partitioning advisor (segments that straddle
    /// clusters show high search counts with low skip rates and high
    /// survival).
    pub fn feedback_snapshot(&self) -> FeedbackSnapshot {
        self.inner.feedback.snapshot()
    }

    /// Estimated `(candidate, dimension)` evaluations this request will
    /// cost across all segments — the cost model's per-spec estimate the
    /// service layer uses for cheap-first batch ordering and deadline-aware
    /// batch cuts. Cold segments use the conservative full-work prior;
    /// warm segments discount by their observed skip rate, warmup depth and
    /// survivor fraction (stats-driven planners only — uniform planning
    /// never skips).
    pub fn estimate_cost(&self, spec: &QuerySpec) -> f64 {
        // Predicate filters discount every segment's estimate by its own
        // eligible fraction (floored at k/live — the scan must still find k
        // answers); a domain-mismatched filter prices as unfiltered here and
        // is rejected by `validate` before execution.
        let eligible = spec.filter_override().and_then(|f| self.filter_eligibility(f).ok());
        if let QueryKind::MultiFeature(mf) = spec.kind() {
            // The synchronized scan has no per-segment plan or feedback
            // model yet: price the full-scan prior over the union of
            // feature dimensions — an admission-ordering estimate, not a
            // calibrated one.
            let total_dims: usize = mf.features().iter().map(|f| f.query().len()).sum();
            let rows = match &eligible {
                Some(counts) => counts.iter().sum::<usize>(),
                None => self.inner.table.live_rows(),
            };
            return rows as f64 * total_dims as f64;
        }
        let planner = spec.planner_override().unwrap_or(self.inner.planner);
        let scan = spec.scan_mode_override().unwrap_or(self.inner.scan);
        let skipping =
            planner.is_stats_driven() && self.inner.share_kappa && !scan.is_approximate();
        (0..self.inner.stats.len())
            .map(|si| {
                // scalar_snapshot: the cost formula reads only the scalar
                // counters, so the per-dimension credit vector is not cloned
                // on this (per-submission) hot path
                let snapshot = self.inner.feedback.segment(si).scalar_snapshot();
                let cost = self.segment_estimate(si, scan, Some(&snapshot), spec.k(), skipping).0;
                match &eligible {
                    Some(counts) => self.inner.cost.filtered_cost(
                        cost,
                        counts[si],
                        self.inner.stats[si].live_rows,
                        spec.k(),
                    ),
                    None => cost,
                }
            })
            .sum()
    }

    /// One segment's cost estimate under `scan`, split into phases:
    /// `(total, filter sweep, exact refine)` — the filter/refine parts are
    /// `None` for exact scans. Code cells are priced at
    /// [`CostModel::quant_cell_cost`] of an exact cell for the kernel this
    /// process dispatches to. Shared by [`Engine::estimate_cost`] and
    /// [`Engine::explain`], so the rendered phase split always sums to the
    /// admission estimate.
    pub(crate) fn segment_estimate(
        &self,
        si: usize,
        scan: ScanMode,
        snapshot: Option<&SegmentFeedbackSnapshot>,
        k: usize,
        skipping: bool,
    ) -> (f64, Option<f64>, Option<f64>) {
        let inner = &*self.inner;
        let stats = &inner.stats[si];
        match scan {
            ScanMode::Exact => (inner.cost.segment_cost(stats, snapshot, k, skipping), None, None),
            ScanMode::QuantizedFilter => {
                let (filter, refine) = inner.cost.segment_cost_quantized_split_with_kernel(
                    stats,
                    snapshot,
                    k,
                    skipping,
                    Kernel::active(),
                );
                (filter + refine, Some(filter), Some(refine))
            }
            ScanMode::ApproximateQuantized { .. } => {
                // codes only: the full sweep, never skipped, nothing exact
                let filter = stats.live_rows as f64
                    * stats.per_dim.len() as f64
                    * CostModel::quant_cell_cost(Kernel::active());
                (filter, Some(filter), Some(0.0))
            }
        }
    }

    /// The `BondParams` a query executing under `rule` effectively uses:
    /// the engine's params, with non-explicit orderings switched to the
    /// weighted default ordering for weighted rules — the same rewrite the
    /// sequential weighted entry points apply.
    fn params_for(&self, rule: &RuleKind) -> BondParams {
        let mut params = self.inner.params.clone();
        if rule.weights().is_some() && !matches!(params.ordering, DimensionOrdering::Explicit(_)) {
            params.ordering = DimensionOrdering::WeightedQueryDescending;
        }
        params
    }

    /// The segment *visit order* a feedback-planned query uses: segments
    /// sorted most-promising-first by their optimistic zone-map envelope
    /// score toward the query, ties broken on the segment index. Visiting
    /// the query's own neighbourhood first establishes κ before any far
    /// segment starts, so those segments skip or prune at their first
    /// attempt. Shared by [`Engine::execute`] and [`Engine::explain`], so
    /// the rendered order is the executed order by construction.
    pub(crate) fn plan_visit_order(
        &self,
        metric: &dyn DecomposableMetric,
        objective: Objective,
        query: &[f64],
    ) -> Vec<usize> {
        let inner = &*self.inner;
        let mut order: Vec<usize> = (0..inner.specs.len()).collect();
        let promise: Vec<f64> = inner
            .envelopes
            .iter()
            .map(|env| match env {
                Some((mins, maxs)) => metric.envelope_best_score(query, mins, maxs),
                None => match objective {
                    Objective::Maximize => f64::NEG_INFINITY,
                    Objective::Minimize => f64::INFINITY,
                },
            })
            .collect();
        order.sort_by(|&a, &b| {
            let cmp = promise[a].partial_cmp(&promise[b]).unwrap_or(std::cmp::Ordering::Equal);
            match objective {
                Objective::Maximize => cmp.reverse().then(a.cmp(&b)),
                Objective::Minimize => cmp.then(a.cmp(&b)),
            }
        });
        order
    }

    /// Derives the [`SegmentPlan`] segment `si` executes for `query` under
    /// `planner` — the single plan-derivation path shared by the execution
    /// workers and [`Engine::explain`], which is what makes the rendered
    /// plan the executed plan. `snapshot` is the segment's feedback
    /// snapshot for [`PlannerKind::Feedback`] (callers pass the same
    /// per-batch snapshot to every task of a batch; `explain` takes a
    /// fresh one).
    pub(crate) fn derive_segment_plan(
        &self,
        si: usize,
        planner: PlannerKind,
        rule: &RuleKind,
        query: &[f64],
        snapshot: Option<&SegmentFeedbackSnapshot>,
    ) -> SegmentPlan {
        let inner = &*self.inner;
        match planner {
            PlannerKind::Uniform => {
                let params = self.params_for(rule);
                SegmentPlan::uniform(&params, query, rule.weights(), inner.table.dims())
            }
            PlannerKind::Adaptive => {
                inner.cost.plan(&inner.stats[si], query, rule.weights(), rule.objective())
            }
            PlannerKind::Feedback => {
                let owned;
                let snapshot = match snapshot {
                    Some(s) => s,
                    None => {
                        owned = inner.feedback.segment(si).snapshot();
                        &owned
                    }
                };
                inner.cost.plan_with_feedback(
                    &inner.stats[si],
                    snapshot,
                    query,
                    rule.weights(),
                    rule.objective(),
                )
            }
        }
    }

    /// Checks one request against this engine's table and the spec's
    /// effective rule, without executing anything: the up-front validation
    /// [`Engine::execute`] applies to every spec, exposed so admission
    /// control (e.g. [`crate::service::Server::submit`]) can reject a bad
    /// request immediately instead of poisoning a coalesced batch.
    pub fn validate(&self, spec: &QuerySpec) -> Result<()> {
        let dims = self.inner.table.dims();
        // A predicate filter must address the table's full row domain and
        // leave at least one live row eligible; `k` is then checked against
        // the *eligible* count, so an over-asking filtered request fails at
        // admission instead of returning a silently short answer.
        let eligible = match spec.filter_override() {
            Some(filter) => {
                let total: usize = self.filter_eligibility(filter)?.iter().sum();
                if total == 0 {
                    return Err(BondError::InvalidFilter(
                        "filter leaves no live row eligible".into(),
                    ));
                }
                total
            }
            None => self.inner.table.live_rows(),
        };
        if spec.k() == 0 || spec.k() > eligible {
            return Err(BondError::InvalidK { k: spec.k(), rows: eligible });
        }
        match spec.kind() {
            QueryKind::TopK => {
                if spec.vector().len() != dims {
                    return Err(BondError::QueryDimensionMismatch {
                        expected: dims,
                        actual: spec.vector().len(),
                    });
                }
                let rule = spec.rule_override().unwrap_or(&self.inner.rule);
                if let Some(w) = rule.weights() {
                    if w.len() != dims {
                        return Err(BondError::WeightDimensionMismatch {
                            expected: dims,
                            actual: w.len(),
                        });
                    }
                }
                // Invalid weight *values* (directly constructed variants
                // bypassing the validating constructors) error here instead
                // of panicking in `make_metric` during execution.
                rule.validate(dims)?;
                let scan = spec.scan_mode_override().unwrap_or(self.inner.scan);
                if let ScanMode::ApproximateQuantized { bits } = scan {
                    if bits == 0 || bits > 8 {
                        return Err(BondError::InvalidParams(format!(
                            "approximate scan bits must be in 1..=8, got {bits}"
                        )));
                    }
                }
            }
            QueryKind::MultiFeature(mf) => self.validate_multifeature(spec, mf)?,
        }
        Ok(())
    }

    /// The multi-feature half of [`Engine::validate`]: feature arity,
    /// per-feature dimensionalities (typed as
    /// [`BondError::FeatureDimensionMismatch`]), shared row space, the
    /// aggregate's weights, and the overrides this kind does not accept.
    fn validate_multifeature(&self, spec: &QuerySpec, mf: &MultiFeatureSpec) -> Result<()> {
        if spec.rule_override().is_some() {
            return Err(BondError::InvalidParams(
                "multi-feature requests cannot override the pruning rule — each feature \
                 prunes under its own metric's rule"
                    .into(),
            ));
        }
        if spec.scan_mode_override().is_some_and(|scan| scan != ScanMode::Exact) {
            return Err(BondError::InvalidParams(format!(
                "multi-feature requests execute exact scans only, got scan mode {}",
                spec.scan_mode_override().expect("checked above").label()
            )));
        }
        if mf.features().is_empty() {
            return Err(BondError::InvalidParams(
                "multi-feature request needs at least one feature".into(),
            ));
        }
        mf.aggregate().validate(mf.features().len())?;
        let rows = self.inner.table.rows();
        for (f, feature) in mf.features().iter().enumerate() {
            let (expected, feature_rows) = match feature.table() {
                Some(table) => (table.dims(), table.rows()),
                None => (self.inner.table.dims(), rows),
            };
            if feature.query().len() != expected {
                return Err(BondError::FeatureDimensionMismatch {
                    feature: f,
                    expected,
                    actual: feature.query().len(),
                });
            }
            if feature_rows != rows {
                return Err(BondError::InvalidParams(format!(
                    "feature {f}'s collection has {feature_rows} rows, the engine's table \
                     has {rows}"
                )));
            }
        }
        Ok(())
    }

    /// Per-segment eligible-row counts under `filter` — `filter ∧ live`,
    /// segment by segment, without materialising any intersection. The
    /// shared precondition check of [`Engine::validate`],
    /// [`Engine::estimate_cost`] and [`Engine::explain`]'s filtered
    /// rendering.
    ///
    /// # Errors
    ///
    /// [`BondError::InvalidFilter`] when the bitmap's domain is not the
    /// table's full row count.
    pub(crate) fn filter_eligibility(&self, filter: &Bitmap) -> Result<Vec<usize>> {
        let inner = &*self.inner;
        if filter.len() != inner.table.rows() {
            return Err(BondError::InvalidFilter(format!(
                "filter covers {} rows but the table has {}",
                filter.len(),
                inner.table.rows()
            )));
        }
        Ok(inner
            .specs
            .iter()
            .map(|s| {
                let segment = s.view(&inner.table).expect("specs partition this table");
                filter.slice(segment.range()).intersection_count(&segment.live_bitmap())
            })
            .collect())
    }

    /// Runs one k-NN query under the engine defaults; equivalent to a
    /// single-spec [`Engine::execute`].
    pub fn search(&self, query: &[f64], k: usize) -> Result<QueryOutcome> {
        self.search_spec(&QuerySpec::new(query.to_vec(), k))
    }

    /// Runs one request, honouring its per-query overrides; equivalent to a
    /// single-spec [`Engine::execute`].
    pub fn search_spec(&self, spec: &QuerySpec) -> Result<QueryOutcome> {
        let batch = RequestBatch::single(spec.clone());
        let mut outcome = self.execute(&batch)?;
        Ok(outcome.queries.pop().expect("one outcome per query"))
    }

    /// Executes a whole batch: all `queries × segments` searches are
    /// scheduled on one worker pool, per-query setup (effective rule and
    /// planner, segment plans, κ cells) is done once, and each query's
    /// per-segment answers are merged into its own top-`k`. Specs may mix
    /// `k`s, rules and planners freely — heterogeneity costs nothing
    /// beyond the per-query setup it always required. Under adaptive
    /// planning, segments whose zone-map bound cannot reach the query's
    /// current κ are skipped entirely (their [`SegmentRun::trace`] reports
    /// `segment_skipped`).
    ///
    /// Every spec is validated before any work starts; the first invalid
    /// spec fails the whole call.
    ///
    /// Filtered requests ([`QuerySpec::filter`]) restrict every stage to
    /// their eligible rows; multi-feature requests
    /// ([`QuerySpec::multi_feature`]) run one synchronized scan per segment
    /// under the same shared-κ protocol and merge exactly like top-k
    /// requests. Both kinds coexist freely in one batch.
    pub fn execute(&self, batch: &RequestBatch) -> Result<BatchOutcome> {
        for spec in batch.specs() {
            self.validate(spec)?;
        }
        if batch.is_empty() {
            return Ok(BatchOutcome { queries: Vec::new() });
        }
        if batch.specs().iter().any(|s| matches!(s.kind(), QueryKind::MultiFeature(_))) {
            return self.execute_mixed(batch);
        }
        self.execute_topk(batch)
    }

    /// A batch with at least one multi-feature request: the classic top-k
    /// specs run in one engine pass exactly as a homogeneous batch would,
    /// each multi-feature spec runs its own synchronized per-segment pass,
    /// and the answers reassemble in submission order.
    fn execute_mixed(&self, batch: &RequestBatch) -> Result<BatchOutcome> {
        let mut slots: Vec<Option<QueryOutcome>> = (0..batch.len()).map(|_| None).collect();
        let topk: Vec<usize> = batch
            .specs()
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind(), QueryKind::TopK))
            .map(|(i, _)| i)
            .collect();
        if !topk.is_empty() {
            let sub =
                RequestBatch::from_specs(topk.iter().map(|&i| batch.specs()[i].clone()).collect());
            let outcome = self.execute_topk(&sub)?;
            for (&i, out) in topk.iter().zip(outcome.queries) {
                slots[i] = Some(out);
            }
        } else {
            // the engine-pass counter ticks once per `execute` call; the
            // top-k subset's pass already counted it when one ran
            self.inner.metrics.batches.inc();
        }
        for (i, spec) in batch.specs().iter().enumerate() {
            if let QueryKind::MultiFeature(mf) = spec.kind() {
                slots[i] = Some(self.execute_multifeature(spec, mf)?);
            }
        }
        Ok(BatchOutcome {
            queries: slots.into_iter().map(|s| s.expect("every slot answered")).collect(),
        })
    }

    /// One multi-feature request: a synchronized scan
    /// ([`MultiFeatureSearcher::search_range`]) per segment on the worker
    /// pool, all segments pooling their combined-similarity κ through one
    /// shared cell, per-segment exact answers merged into the global top-k
    /// under the deterministic `(score, row)` order. Tombstones and the
    /// spec's predicate filter both enter as the per-segment eligibility
    /// bitmap.
    fn execute_multifeature(
        &self,
        spec: &QuerySpec,
        mf: &MultiFeatureSpec,
    ) -> Result<QueryOutcome> {
        let inner = &*self.inner;
        let start = Instant::now();
        let plan_span = Span::begin(names::SPAN_ENGINE_PLAN).detail(1);
        let tables: Vec<&DecomposedTable> = mf
            .features()
            .iter()
            .map(|f| f.table().map(|t| t.as_ref()).unwrap_or(&inner.table))
            .collect();
        let searcher = MultiFeatureSearcher::new(tables.clone())?;
        let queries: Vec<FeatureQuery> = mf
            .features()
            .iter()
            .map(|f| FeatureQuery { query: f.query().to_vec(), metric: f.metric() })
            .collect();
        let aggregate = mf.aggregate().build()?;
        let k = spec.k();
        let schedule = inner.params.schedule;
        // Per-feature full-table row sums, computed once per query instead
        // of once per segment worker.
        let total_mass: Vec<Vec<f64>> = tables.iter().map(|t| t.row_sums()).collect();
        // The combined similarity is maximized regardless of the component
        // metrics (Euclidean components are flipped onto the similarity
        // scale before aggregation), so one Maximize cell serves any mix.
        let kappa = inner.share_kappa.then(|| SharedKappa::new(Objective::Maximize));
        let segments: Vec<Segment<'_>> = inner
            .specs
            .iter()
            .map(|s| s.view(&inner.table).expect("specs partition this table"))
            .collect();
        let n_segments = segments.len();
        drop(plan_span);

        let slots: Vec<OnceLock<Result<MultiFeatureOutcome>>> =
            (0..n_segments).map(|_| OnceLock::new()).collect();
        let run_task = |si: usize| {
            let segment = &segments[si];
            // Eligibility local to the segment: tombstones ∧ predicate.
            let mut local = segment.live_bitmap();
            if let Some(filter) = spec.filter_override() {
                local.and_with(&filter.slice(segment.range()));
            }
            let eligible = local.count();
            if eligible == 0 {
                if spec.filter_override().is_some() {
                    inner.metrics.filter_segments_empty.inc();
                }
                slots[si]
                    .set(Ok(MultiFeatureOutcome {
                        hits: Vec::new(),
                        trace: PruneTrace { segment_skipped: true, ..PruneTrace::default() },
                    }))
                    .expect("each segment is claimed exactly once");
                return;
            }
            if spec.filter_override().is_some() {
                inner.metrics.filter_eligible_rows.add(eligible as u64);
            }
            let scan_span = Span::begin(names::SPAN_ENGINE_SCAN).detail(si as u64);
            let ctx = MultiFeatureContext {
                kappa: kappa.as_ref().map(|cell| cell as &dyn KappaCell),
                total_mass: Some(&total_mass),
                filter: Some(&local),
            };
            let result = searcher.search_range(
                &queries,
                aggregate.as_ref(),
                k,
                schedule,
                segment.range(),
                &ctx,
            );
            drop(scan_span);
            inner.metrics.multifeature_searches.inc();
            slots[si].set(result).expect("each segment is claimed exactly once");
        };
        let workers = inner.threads.min(n_segments);
        if workers <= 1 {
            for si in 0..n_segments {
                run_task(si);
            }
        } else {
            let next_task = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        // ordering: relaxed — the atomic RMW alone makes each
                        // segment index unique; segment *data* is published
                        // to the workers by `thread::scope`'s spawn
                        // (happens-before the closure runs), not through
                        // this counter.
                        let si = next_task.fetch_add(1, Ordering::Relaxed);
                        if si >= n_segments {
                            break;
                        }
                        run_task(si);
                    });
                }
            });
        }
        let outcomes: Vec<MultiFeatureOutcome> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all segments completed"))
            .collect::<Result<_>>()?;

        let merge_span = Span::begin(names::SPAN_ENGINE_MERGE).detail(1);
        // Per-segment hits carry exact combined similarities for global
        // rows, so the deterministic (score, row) top-k order makes this
        // merge bit-identical to one full-table synchronized scan.
        let mut heap = TopKLargest::new(k);
        let mut runs = Vec::with_capacity(n_segments);
        for (segment, out) in segments.iter().zip(outcomes) {
            for hit in &out.hits {
                heap.push(hit.row, hit.score);
            }
            runs.push(SegmentRun { rows: segment.range(), trace: out.trace, plan: None });
        }
        let outcome =
            QueryOutcome { hits: heap.into_sorted_vec(), error_bounds: None, segments: runs };
        drop(merge_span);

        let m = &inner.metrics;
        m.queries.inc();
        m.scanned_cells.record(outcome.contributions_evaluated());
        let skipped = outcome.segments_skipped() as u64;
        m.segment_searched.add(n_segments as u64 - skipped);
        m.segment_skipped.add(skipped);
        m.latency_us.record(start.elapsed().as_micros() as u64);
        Ok(outcome)
    }

    /// The classic top-k engine pass. Every spec must already be validated
    /// and of [`QueryKind::TopK`].
    fn execute_topk(&self, batch: &RequestBatch) -> Result<BatchOutcome> {
        let inner = &*self.inner;
        let batch_start = Instant::now();
        let plan_span = Span::begin(names::SPAN_ENGINE_PLAN).detail(batch.len() as u64);

        // Materialise the zero-copy segment views for this call.
        let segments: Vec<Segment<'_>> = inner
            .specs
            .iter()
            .map(|s| s.view(&inner.table).expect("specs partition this table"))
            .collect();
        let n_segments = segments.len();
        // Whether the columns are served by a file mapping — the only case
        // where access-pattern advice reaches a kernel.
        let mapped = inner.table.backend() == StorageBackend::Mapped;

        // Per-query setup, done once and shared by every segment worker:
        // the effective rule/planner, the metric, the uniform plan and
        // (optionally) the κ cell. (Adaptive plans are per-(query, segment)
        // values derived inside the task itself — on the worker pool, and
        // only for segments the zone-map check does not skip.)
        let resolved: Vec<ResolvedQuery<'_>> = batch
            .specs()
            .iter()
            .map(|spec| {
                let rule = spec.rule_override().unwrap_or(&inner.rule);
                let planner = spec.planner_override().unwrap_or(inner.planner);
                let scan = spec.scan_mode_override().unwrap_or(inner.scan);
                // Quantized scans resolve (and, on the cache's first miss,
                // build) their code companions up front — workers only read.
                // Filter scans take the adaptively bit-sized companion (the
                // feedback store may have dropped tight segments to 4 bits);
                // approximate scans answer *from* the codes, so they keep
                // the exact uniform width the caller asked for.
                let codes = match scan {
                    ScanMode::QuantizedFilter => Some(self.ensure_adaptive_codes()?),
                    _ if scan.uses_codes() => Some(self.ensure_codes(scan.bits())?),
                    _ => None,
                };
                let metric = rule.make_metric();
                let objective = rule.objective();
                // The uniform plan is segment-independent; derive it once
                // per query through the same path `explain` renders from.
                let uniform_plan = (planner == PlannerKind::Uniform).then(|| {
                    self.derive_segment_plan(0, PlannerKind::Uniform, rule, spec.vector(), None)
                });
                let query_sum =
                    if planner.is_stats_driven() { spec.vector().iter().sum() } else { 0.0 };
                let kappa = inner.share_kappa.then(|| SharedKappa::new(objective));
                // Feedback planning also schedules with the cost model:
                // segments are visited most-promising-first (tightest
                // optimistic envelope score toward the query), so the
                // query's own neighbourhood establishes κ before any far
                // segment starts — which lets those segments skip or prune
                // at their first attempt instead of warming up against an
                // empty bound. Any visit order is rank-correct; this one
                // just minimises wasted scans.
                let visit_order = (planner.uses_feedback() && inner.share_kappa)
                    .then(|| self.plan_visit_order(metric.as_ref(), objective, spec.vector()));
                let estimate = self.estimate_cost(spec);
                Ok(ResolvedQuery {
                    spec,
                    rule,
                    planner,
                    scan,
                    codes,
                    metric,
                    objective,
                    filter: spec.filter_override().map(|f| f.as_ref()),
                    uniform_plan,
                    query_sum,
                    estimate,
                    kappa,
                    visit_order,
                })
            })
            .collect::<Result<_>>()?;

        // The `T(x)` table, materialised once per engine the first time any
        // request's rule needs it.
        let row_sums: Option<&[f64]> = resolved
            .iter()
            .any(|rq| rq.rule.needs_total_mass())
            .then(|| inner.row_sums.get_or_init(|| inner.table.row_sums()).as_slice());

        // Feedback-planned queries read each segment's accumulated
        // counters; one snapshot per segment per *batch* is enough (the
        // model tolerates staleness by design — a stale read merely plans
        // like yesterday) and avoids cloning the per-dimension credit
        // vector once per (query × segment) task on the worker hot path.
        let feedback_snapshots: Option<Vec<SegmentFeedbackSnapshot>> = resolved
            .iter()
            .any(|rq| rq.planner.uses_feedback())
            .then(|| (0..n_segments).map(|si| inner.feedback.segment(si).snapshot()).collect());
        if let Some(snapshots) = &feedback_snapshots {
            let warm = snapshots.iter().filter(|s| s.is_warm(inner.cost.min_warm_searches)).count();
            inner.metrics.warm_segments.set(warm as i64);
        }
        drop(plan_span);

        let n_tasks = batch.len() * n_segments;
        let slots: Vec<OnceLock<Result<TaskOutcome>>> =
            (0..n_tasks).map(|_| OnceLock::new()).collect();

        let run_task = |task: usize| {
            let qi = task / n_segments;
            let pos = task % n_segments;
            let rq = &resolved[qi];
            // position `pos` of a feedback-planned query executes the
            // `pos`-th most promising segment; everyone else visits in row
            // order. The slot keeps the *position* index — the merge
            // permutes outcomes back into segment order.
            let si = rq.visit_order.as_ref().map_or(pos, |order| order[pos]);
            let segment = &segments[si];
            let query = rq.spec.vector();
            let k = rq.spec.k();
            let cell = rq.kappa.as_ref();

            // Predicate filter: this segment's window of the query's
            // eligibility bitmap. A window that leaves no live row eligible
            // skips the segment before any bound — or column — is touched.
            let filter_slice = rq.filter.map(|f| f.slice(segment.range()));
            let eligible =
                filter_slice.as_ref().map(|f| f.intersection_count(&segment.live_bitmap()));
            if eligible == Some(0) {
                inner.metrics.filter_segments_empty.inc();
                slots[task]
                    .set(Ok(TaskOutcome {
                        outcome: SearchOutcome {
                            hits: Vec::new(),
                            trace: PruneTrace {
                                segment_skipped: true,
                                rule: Some(rq.rule.name()),
                                ..PruneTrace::default()
                            },
                        },
                        plan: None,
                        error_bounds: None,
                    }))
                    .expect("each task is claimed exactly once");
                return;
            }
            if let Some(rows) = eligible {
                inner.metrics.filter_eligible_rows.add(rows as u64);
            }

            if rq.scan.is_approximate() {
                // Codes only: one branch-free sweep of the segment's code
                // columns, midpoint scores, per-hit error bounds. No exact
                // fragment is read, no κ is published (midpoint scores are
                // not safe bounds for exact searches), no plan is derived.
                let scan_span = Span::begin(names::SPAN_ENGINE_SCAN).detail(si as u64);
                let codes = rq.codes.as_ref().expect("approximate queries carry codes");
                let start = segment.range().start as u32;
                let mut live = segment.live_bitmap();
                if let Some(filter) = &filter_slice {
                    live.and_with(filter);
                }
                let result = codes.segment_view(si).map_err(BondError::Storage).and_then(|view| {
                    quantfilter::approximate_topk(&view, rq.metric.as_ref(), query, k, &live)
                });
                drop(scan_span);
                slots[task]
                    .set(result.map(|approx| {
                        let hits = approx
                            .hits
                            .into_iter()
                            .map(|h| Scored { row: h.row + start, score: h.score })
                            .collect();
                        let trace = PruneTrace {
                            filter_cells: approx.cells,
                            filter_bits: rq.scan.bits(),
                            kernel: Some(Kernel::active().label()),
                            rule: Some(rq.rule.name()),
                            ..PruneTrace::default()
                        };
                        TaskOutcome {
                            outcome: SearchOutcome { hits, trace },
                            plan: None,
                            error_bounds: Some(approx.error_bounds),
                        }
                    }))
                    .expect("each task is claimed exactly once");
                return;
            }

            if rq.planner.is_stats_driven() {
                // The envelope covers the whole segment, so its bound is
                // conservative (still valid) for any eligible subset —
                // filtered zone-map skips can never drop an eligible row.
                if let Some(outcome) = self.try_skip_segment(si, rq) {
                    // a zone-map skip hit is itself feedback: it raises the
                    // segment's observed skip rate, cheapening its estimate
                    // (filtered traces are kept out of the store — see the
                    // `record_search` gate below)
                    if rq.filter.is_none() {
                        inner.feedback.segment(si).record_skip();
                    }
                    slots[task]
                        .set(Ok(TaskOutcome { outcome, plan: None, error_bounds: None }))
                        .expect("each task is claimed exactly once");
                    return;
                }
            }

            let scan_span = Span::begin(names::SPAN_ENGINE_SCAN).detail(si as u64);
            let mut rule = rq.rule.make_rule();
            let plan = match rq.planner {
                PlannerKind::Uniform => {
                    rq.uniform_plan.clone().expect("uniform queries carry a plan")
                }
                _ => self.derive_segment_plan(
                    si,
                    rq.planner,
                    rq.rule,
                    query,
                    feedback_snapshots.as_ref().map(|snapshots| &snapshots[si]),
                ),
            };
            // Mapped backend: hint the kernel about the scan the chosen
            // plan is about to run — the first block's fragment slices are
            // certain to be read front to back.
            if mapped {
                let first_block = plan.schedule.next_block(0, inner.table.dims(), 0);
                segment.advise(plan.order.iter().take(first_block).copied(), Advice::Sequential);
            }
            // QuantizedFilter: hand the segment's code window to the
            // searcher, which sweeps it as a first pass and exactly refines
            // only the surviving rows.
            let codes_view = match rq.codes.as_ref().map(|codes| codes.segment_view(si)) {
                Some(Ok(view)) => Some(view),
                Some(Err(e)) => {
                    slots[task]
                        .set(Err(BondError::Storage(e)))
                        .expect("each task is claimed exactly once");
                    return;
                }
                None => None,
            };
            let ctx = SegmentContext {
                kappa: cell.map(|cell| cell as &dyn KappaCell),
                row_sums: row_sums.map(|sums| &sums[segment.range()]),
                plan: Some(&plan),
                codes: codes_view,
                filter: filter_slice.as_ref(),
            };
            let mut outcome = search_segment(
                segment,
                query,
                rq.metric.as_ref(),
                rule.as_mut(),
                k,
                rq.rule.weights(),
                &inner.params,
                &ctx,
            );
            if let Ok(outcome) = &mut outcome {
                // Stamp which pruning rule produced this trace — bound
                // scales are incomparable across rules, and downstream
                // consumers (per-rule metrics, ANALYZE) must not mix them.
                outcome.trace.rule = Some(rq.rule.name());
                if rq.planner.is_stats_driven() {
                    // The segment's k-th best *exact* score is a valid κ (k
                    // witnesses reach it); publishing it arms the zone-map
                    // skip for segments that have not started yet.
                    if let Some(cell) = cell {
                        if outcome.hits.len() >= k {
                            cell.tighten(outcome.hits[k - 1].score);
                        }
                    }
                }
                // Fold the executed plan's trace into the feedback store —
                // every planner teaches the `Feedback` planner, because the
                // credit is keyed by dimension id, not by policy. Filtered
                // queries are excluded: their survival and prune-depth
                // signals describe the predicate's subset, not the segment,
                // and would poison the unfiltered estimates.
                if rq.filter.is_none() {
                    inner.feedback.segment(si).record_search(
                        &plan.order,
                        &outcome.trace,
                        segment.len(),
                    );
                }
            }
            drop(scan_span);
            slots[task]
                .set(outcome.map(|outcome| TaskOutcome {
                    outcome,
                    plan: Some(plan),
                    error_bounds: None,
                }))
                .expect("each task is claimed exactly once");
        };

        let workers = inner.threads.min(n_tasks);
        if workers <= 1 {
            for task in 0..n_tasks {
                run_task(task);
            }
        } else {
            let next_task = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        // ordering: relaxed — the atomic RMW alone makes each
                        // task index unique; task *data* is published to the
                        // workers by `thread::scope`'s spawn (happens-before
                        // the closure runs), not through this counter.
                        let task = next_task.fetch_add(1, Ordering::Relaxed);
                        if task >= n_tasks {
                            break;
                        }
                        run_task(task);
                    });
                }
            });
        }

        // Surface any task error *before* touching the advice state, so a
        // failed batch cannot leave the table stuck under MADV_RANDOM.
        let outcomes: Vec<TaskOutcome> = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all tasks completed"))
            .collect::<Result<_>>()?;
        let mut per_task = outcomes.into_iter();

        // Refinement gathers reconstruct scattered rows across every
        // fragment — the random-access pattern of the plans' final step.
        // Advised once per batch (not per query), and reset to the kernel
        // default afterwards so the hint does not outlive the gathers and
        // suppress readahead for the next batch's scans.
        let reverifies = mapped
            && resolved.iter().any(|rq| rq.planner.is_stats_driven() && !rq.scan.is_approximate());
        if reverifies {
            inner.table.advise(Advice::Random);
        }
        let merge_span = Span::begin(names::SPAN_ENGINE_MERGE).detail(batch.len() as u64);
        let mut queries = Vec::with_capacity(batch.len());
        for rq in &resolved {
            let mut segment_outcomes: Vec<TaskOutcome> =
                per_task.by_ref().take(n_segments).collect();
            if let Some(order) = &rq.visit_order {
                // positions back to segment (row-range) order
                let mut by_segment: Vec<Option<TaskOutcome>> =
                    (0..n_segments).map(|_| None).collect();
                for (&si, outcome) in order.iter().zip(segment_outcomes) {
                    by_segment[si] = Some(outcome);
                }
                segment_outcomes = by_segment
                    .into_iter()
                    .map(|o| o.expect("visit order is a permutation"))
                    .collect();
            }
            let outcome = self.merge_query(rq, &segments, segment_outcomes);
            self.record_query_metrics(rq, &outcome);
            queries.push(outcome);
        }
        drop(merge_span);
        if reverifies {
            inner.table.advise(Advice::Normal);
        }
        inner.metrics.batches.inc();
        // Every query of a coalesced batch waits for the whole engine pass,
        // so the batch's wall time *is* the latency each submitter observes.
        let elapsed_us = batch_start.elapsed().as_micros() as u64;
        for _ in 0..batch.len() {
            inner.metrics.latency_us.record(elapsed_us);
        }
        Ok(BatchOutcome { queries })
    }

    /// Folds one answered query into the engine's metric handles: counts,
    /// executed work, per-segment search/skip tallies, the per-rule scan
    /// counters and the cost model's calibration error.
    fn record_query_metrics(&self, rq: &ResolvedQuery<'_>, outcome: &QueryOutcome) {
        let m = &self.inner.metrics;
        m.queries.inc();
        let scanned = outcome.contributions_evaluated();
        let filter_cells = outcome.quant_filter_cells();
        let cell_cost = CostModel::quant_cell_cost(Kernel::active());
        // `engine.query.scanned_cells` is in exact-cell equivalents: swept
        // code cells fold in at the same per-kernel discount the cost model
        // prices them with, so a quantized query's recorded work is
        // comparable to (and calibrated against) its admission estimate.
        // (They were previously dropped from this histogram entirely.)
        m.scanned_cells.record(scanned + (filter_cells as f64 * cell_cost).round() as u64);
        for run in &outcome.segments {
            let trace = &run.trace;
            if trace.filter_cells > 0 {
                if let Some(counter) = trace.kernel.and_then(|k| m.kernel_counter(k)) {
                    counter.inc();
                }
            }
        }
        let skipped = outcome.segments_skipped() as u64;
        let searched = outcome.segments.len() as u64 - skipped;
        m.segment_searched.add(searched);
        m.segment_skipped.add(skipped);
        if let Some(counter) = m.rule_counter(rq.rule.name()) {
            counter.add(searched);
        }
        if filter_cells > 0 {
            m.quant_filter_cells.add(filter_cells);
            m.quant_refine_rows.add(outcome.quant_refine_rows());
            if let Some(selectivity) = outcome.quant_filter_selectivity() {
                m.quant_filter_selectivity.record((selectivity * 100.0).round() as u64);
            }
        }
        // |estimated − executed| / executed, in whole percent; `max(1)`
        // keeps a fully-skipped query (zero cells) finite. Executed work is
        // in exact-cell equivalents: swept code cells count at the same
        // per-kernel discount the estimate priced them with.
        let executed = scanned as f64 + filter_cells as f64 * cell_cost;
        let error_pct = (rq.estimate - executed).abs() / executed.max(1.0) * 100.0;
        m.cost_error.record(error_pct.round() as u64);
    }

    /// The zone-map check: when the query's κ is already tighter than the
    /// best score any vector inside the segment's envelope could reach, the
    /// segment contributes nothing and is skipped without touching its
    /// columns. Two independent per-segment bounds combine (the tighter
    /// wins): the per-dimension value envelope and the row-sum (total-mass)
    /// envelope. The same ε-slack as candidate pruning keeps boundary ties
    /// safe.
    fn try_skip_segment(&self, si: usize, rq: &ResolvedQuery<'_>) -> Option<SearchOutcome> {
        let kappa = rq.kappa.as_ref()?.get()?;
        let optimistic = self.optimistic_bound(
            si,
            rq.metric.as_ref(),
            rq.objective,
            rq.spec.vector(),
            rq.query_sum,
        )?;
        let slack = prune_slack(kappa);
        let skip = match rq.objective {
            Objective::Maximize => optimistic < kappa - slack,
            Objective::Minimize => optimistic > kappa + slack,
        };
        skip.then(|| SearchOutcome {
            hits: Vec::new(),
            trace: PruneTrace {
                segment_skipped: true,
                rule: Some(rq.rule.name()),
                ..PruneTrace::default()
            },
        })
    }

    /// The tightest optimistic score any vector inside segment `si`'s
    /// zone maps could reach for `query`: the per-dimension value envelope
    /// combined with the row-sum (total-mass) envelope, tighter bound
    /// winning — exactly the bound [`Engine::try_skip_segment`] compares
    /// against κ, shared with [`Engine::explain`]'s rendering. `None` for
    /// a segment with no envelope (an empty segment).
    pub(crate) fn optimistic_bound(
        &self,
        si: usize,
        metric: &dyn DecomposableMetric,
        objective: Objective,
        query: &[f64],
        query_sum: f64,
    ) -> Option<f64> {
        let (mins, maxs) = self.inner.envelopes[si].as_ref()?;
        let mut optimistic = metric.envelope_best_score(query, mins, maxs);
        let stats = &self.inner.stats[si];
        if let Some(mass_bound) =
            metric.mass_best_score(query_sum, stats.row_sum_min, stats.row_sum_max, query.len())
        {
            optimistic = match objective {
                Objective::Maximize => optimistic.min(mass_bound),
                Objective::Minimize => optimistic.max(mass_bound),
            };
        }
        Some(optimistic)
    }

    /// Whether segments of one query share their κ bound (and thus whether
    /// stats-driven planning can skip whole segments).
    pub(crate) fn kappa_shared(&self) -> bool {
        self.inner.share_kappa
    }

    /// Merges per-segment outcomes (global row ids) into the query's global
    /// top-k.
    ///
    /// Under uniform planning every segment refined in the same dimension
    /// order, so scores are directly comparable and the k best under the
    /// total `(score, row)` order match the sequential searcher bit for
    /// bit. Under adaptive planning the refinement orders differ per
    /// segment, so every candidate hit's exact score is re-verified in one
    /// fixed (natural) summation order before ranking — that, plus the
    /// deterministic `RowId` tie-break, makes the merge rank-correct
    /// irrespective of each segment's plan, up to floating-point
    /// indistinguishability: two *distinct* rows whose exact scores differ
    /// by less than summation-order drift (a few ulps) may rank either way
    /// at a segment's k-cutoff. Exactly equal rows (duplicates) always
    /// order by row id, in both engines and the sequential reference.
    fn merge_query(
        &self,
        rq: &ResolvedQuery<'_>,
        segments: &[Segment<'_>],
        segment_outcomes: Vec<TaskOutcome>,
    ) -> QueryOutcome {
        // Approximate scans never re-verify: their scores are interval
        // midpoints by contract, and touching exact rows here would defeat
        // the codes-only promise.
        let reverify = rq.planner.is_stats_driven() && !rq.scan.is_approximate();
        let query = rq.spec.vector();
        let k = rq.spec.k();
        let mut runs = Vec::with_capacity(segment_outcomes.len());
        let mut bound_by_row: HashMap<u32, f64> = HashMap::new();
        let offer = |heap_push: &mut dyn FnMut(Scored)| {
            for (segment, task) in segments.iter().zip(segment_outcomes) {
                let TaskOutcome { outcome, plan, error_bounds } = task;
                if let Some(bounds) = error_bounds {
                    for (hit, bound) in outcome.hits.iter().zip(bounds) {
                        bound_by_row.insert(hit.row, bound);
                    }
                }
                for hit in &outcome.hits {
                    let score = if reverify {
                        let row =
                            self.inner.table.row(hit.row).expect("hit rows are live table rows");
                        rq.metric.score(&row, query)
                    } else {
                        hit.score
                    };
                    heap_push(Scored { row: hit.row, score });
                }
                runs.push(SegmentRun { rows: segment.range(), trace: outcome.trace, plan });
            }
        };
        let hits = match rq.objective {
            Objective::Maximize => {
                let mut heap = TopKLargest::new(k);
                offer(&mut |s| heap.push(s.row, s.score));
                heap.into_sorted_vec()
            }
            Objective::Minimize => {
                let mut heap = TopKSmallest::new(k);
                offer(&mut |s| heap.push(s.row, s.score));
                heap.into_sorted_vec()
            }
        };
        let error_bounds = rq.scan.is_approximate().then(|| {
            hits.iter()
                .map(|h| bound_by_row.get(&h.row).copied().unwrap_or(f64::INFINITY))
                .collect()
        });
        // Close the feedback loop on the merge: a segment that was scanned
        // (not skipped) yet placed nothing in the final top-k was work the
        // zone map failed to avoid — a "skip miss". Filtered queries don't
        // teach it: a miss against a predicate's subset says nothing about
        // the segment's unfiltered promise.
        if rq.filter.is_none() {
            for (si, run) in runs.iter().enumerate() {
                if !run.trace.segment_skipped
                    && !hits.iter().any(|h| run.rows.contains(&(h.row as usize)))
                {
                    self.inner.feedback.segment(si).record_miss();
                    self.inner.metrics.segment_missed.inc();
                }
            }
        }
        QueryOutcome { hits, error_bounds, segments: runs }
    }

    /// Convenience: the sequential reference answer for the engine's
    /// default rule and parameters, computed by the classic single-threaded
    /// [`BondSearcher`] (used by tests, benches and doc examples to
    /// demonstrate equivalence and rank-correctness).
    pub fn sequential_reference(&self, query: &[f64], k: usize) -> Result<Vec<Scored>> {
        self.sequential_reference_spec(&QuerySpec::new(query.to_vec(), k))
    }

    /// The sequential reference answer for one request, honouring its
    /// per-query rule override (the planner override is irrelevant — the
    /// reference is always the classic full-table scan).
    pub fn sequential_reference_spec(&self, spec: &QuerySpec) -> Result<Vec<Scored>> {
        self.validate(spec)?;
        let rule = spec.rule_override().unwrap_or(&self.inner.rule);
        let params = self.params_for(rule);
        let searcher = BondSearcher::new(&self.inner.table);
        let metric = rule.make_metric();
        let mut rule_instance = rule.make_rule();
        let outcome = searcher.search_with_rule(
            spec.vector(),
            metric.as_ref(),
            rule_instance.as_mut(),
            spec.k(),
            rule.weights(),
            &params,
        )?;
        Ok(outcome.hits)
    }
}
