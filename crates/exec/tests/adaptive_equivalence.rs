//! The adaptive planner's contract: per-segment stats-driven plans and
//! κ-aware whole-segment skipping return the *same k-NN set and ranks* as
//! the sequential reference searcher — for every rule, any partition count,
//! any k, and under score ties (duplicate vectors), where the deterministic
//! `RowId` tie-break must agree with the sequential total order. Scores are
//! re-verified exact values, so they match the reference up to summation
//! order (≤ a few ulps), not necessarily bit for bit — that relaxation is
//! exactly what buys per-segment plan freedom. (Distinct rows whose exact
//! scores differ by *less than an ulp or two* could in principle rank
//! either way at a segment cutoff; random collections never produce such
//! pairs, and exact duplicates — which these strategies generate on
//! purpose — order identically by row id everywhere.)

use bond::{BondParams, BondSearcher};
use bond_exec::{Engine, PlannerKind, RequestBatch, RuleKind};
use proptest::prelude::*;
use std::sync::Arc;
use vdstore::topk::Scored;
use vdstore::DecomposedTable;

const DIMS: usize = 8;
const PARTITIONS: [usize; 4] = [1, 2, 3, 7];

/// Random normalized histograms, *each duplicated once* so every distance
/// value occurs at least twice and the merge's tie-breaking is exercised on
/// every query; plus a query index.
fn duplicated_collection() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, DIMS), 15..40), 0usize..30)
        .prop_map(|(mut vectors, qi)| {
            for v in &mut vectors {
                let total: f64 = v.iter().sum();
                if total <= 0.0 {
                    v[0] = 1.0;
                } else {
                    for x in v.iter_mut() {
                        *x /= total;
                    }
                }
            }
            let dupes: Vec<Vec<f64>> = vectors.clone();
            vectors.extend(dupes);
            (vectors, qi)
        })
}

/// Same k-NN set *and ranks*; scores equal up to floating-point summation
/// order.
fn assert_rank_correct(adaptive: &[Scored], reference: &[Scored], context: &str) {
    assert_eq!(adaptive.len(), reference.len(), "{context}: hit counts differ");
    for (i, (a, r)) in adaptive.iter().zip(reference).enumerate() {
        assert_eq!(a.row, r.row, "{context}: rank {i} row diverges");
        assert!(
            (a.score - r.score).abs() <= 1e-9 * r.score.abs().max(1.0),
            "{context}: rank {i} score {} vs reference {}",
            a.score,
            r.score
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn adaptive_plans_are_rank_correct_for_every_rule(
        (vectors, qi) in duplicated_collection(),
    ) {
        let table = Arc::new(DecomposedTable::from_vectors("adaptive", &vectors).unwrap());
        let query = vectors[qi % vectors.len()].clone();
        let n = table.rows();
        for rule in RuleKind::ALL {
            for partitions in PARTITIONS {
                for k in [1, 10.min(n), n] {
                    let engine = Engine::builder(table.clone())
                        .partitions(partitions)
                        .threads(3)
                        .rule(rule.clone())
                        .planner(PlannerKind::Adaptive)
                        .build()
                        .unwrap();
                    let outcome = engine.search(&query, k).unwrap();
                    let reference = engine.sequential_reference(&query, k).unwrap();
                    let context = format!(
                        "rule {} partitions {partitions} k {k} rows {n}",
                        rule.name()
                    );
                    assert_rank_correct(&outcome.hits, &reference, &context);
                }
            }
        }
    }

    #[test]
    fn weighted_rules_match_the_sequential_weighted_searcher(
        (vectors, qi) in duplicated_collection(),
        uniform_planner in proptest::bool::ANY,
    ) {
        let table = Arc::new(DecomposedTable::from_vectors("weighted", &vectors).unwrap());
        let query = vectors[qi % vectors.len()].clone();
        let n = table.rows();
        let k = 5.min(n);
        // a subspace-ish weight profile: one heavy, one zero, rest moderate
        let mut weights = vec![1.0; DIMS];
        weights[0] = 4.0;
        weights[DIMS - 1] = 0.0;
        let planner =
            if uniform_planner { PlannerKind::Uniform } else { PlannerKind::Adaptive };
        let params = BondParams::default();
        let searcher = BondSearcher::new(&table);

        for (kind, sequential) in [
            (
                RuleKind::weighted_euclidean(weights.clone()).unwrap(),
                searcher.weighted_euclidean(&query, &weights, k, &params).unwrap().hits,
            ),
            (
                RuleKind::weighted_histogram(weights.clone()).unwrap(),
                searcher
                    .weighted_histogram_intersection(&query, &weights, k, &params)
                    .unwrap()
                    .hits,
            ),
        ] {
            let engine = Engine::builder(table.clone())
                .partitions(3)
                .threads(2)
                .rule(kind.clone())
                .planner(planner)
                .build()
                .unwrap();
            let outcome = engine.search(&query, k).unwrap();
            let context = format!("weighted rule {} planner {planner:?}", kind.name());
            assert_rank_correct(&outcome.hits, &sequential, &context);
        }
    }

    #[test]
    fn adaptive_batches_match_single_queries(
        (vectors, _) in duplicated_collection(),
        k in 1usize..=5,
    ) {
        let table = DecomposedTable::from_vectors("batch", &vectors).unwrap();
        let queries: Vec<Vec<f64>> =
            vectors.iter().step_by(vectors.len().div_ceil(4).max(1)).cloned().collect();
        let engine = Engine::builder(table)
            .partitions(3)
            .threads(2)
            .planner(PlannerKind::Adaptive)
            .build()
            .unwrap();
        let outcome = engine
            .execute(&RequestBatch::from_queries(queries.clone(), k))
            .unwrap();
        for (q, merged) in queries.iter().zip(&outcome.queries) {
            let reference = engine.sequential_reference(q, k).unwrap();
            assert_rank_correct(&merged.hits, &reference, "adaptive batch");
        }
    }
}

/// Two well-separated clusters in distinct row ranges: once the first
/// segment has proven its κ, the second segment's envelope bound cannot
/// reach it and the whole segment must be skipped with *zero* column
/// touches (no contributions, no dimensions accessed, no pruning attempts).
#[test]
fn far_segment_is_skipped_without_touching_columns() {
    let dims = 8;
    let mut vectors = Vec::new();
    for i in 0..50 {
        // cluster A: tightly around 0.1
        vectors.push(vec![0.1 + (i % 10) as f64 * 1e-3; dims]);
    }
    for i in 0..50 {
        // cluster B: tightly around 0.9, provably far from cluster A
        vectors.push(vec![0.9 - (i % 10) as f64 * 1e-3; dims]);
    }
    let table = DecomposedTable::from_vectors("two_clusters", &vectors).unwrap();
    let query = vectors[0].clone();

    let engine = Engine::builder(table)
        .partitions(2)
        .threads(1) // deterministic task order: segment 0 runs first
        .rule(RuleKind::EuclideanEv)
        .planner(PlannerKind::Adaptive)
        .build()
        .unwrap();
    let outcome = engine.search(&query, 5).unwrap();

    // the answers all come from cluster A and match the reference
    let reference = engine.sequential_reference(&query, 5).unwrap();
    assert_rank_correct(&outcome.hits, &reference, "two clusters");
    assert!(outcome.hits.iter().all(|h| h.row < 50));

    // segment 1 (rows 50..100) was skipped outright
    assert_eq!(outcome.segments.len(), 2);
    let skipped = &outcome.segments[1].trace;
    assert!(skipped.segment_skipped, "far segment must be skipped");
    assert_eq!(skipped.contributions_evaluated, 0, "zero column touches");
    assert_eq!(skipped.dims_accessed, 0);
    assert_eq!(skipped.pruning_attempts, 0);
    assert!(skipped.checkpoints.is_empty());
    assert_eq!(outcome.segments_skipped(), 1);
    // segment 0 did real work
    assert!(outcome.segments[0].trace.contributions_evaluated > 0);
}

/// The similarity-side skip: a segment with no mass on the query's
/// dimensions has envelope bound ~0 and is skipped.
#[test]
fn massless_segment_is_skipped_under_histogram_intersection() {
    let mut vectors = Vec::new();
    for i in 0..40 {
        let x = 0.8 + (i % 5) as f64 * 0.01;
        vectors.push(vec![x, 1.0 - x, 0.0, 0.0]);
    }
    for i in 0..40 {
        let x = 0.8 + (i % 5) as f64 * 0.01;
        vectors.push(vec![0.0, 0.0, x, 1.0 - x]);
    }
    let table = DecomposedTable::from_vectors("disjoint_support", &vectors).unwrap();
    let query = vec![0.8, 0.2, 0.0, 0.0];

    let engine = Engine::builder(table)
        .partitions(2)
        .threads(1)
        .rule(RuleKind::HistogramHq)
        .planner(PlannerKind::Adaptive)
        .build()
        .unwrap();
    let outcome = engine.search(&query, 3).unwrap();
    assert!(outcome.segments[1].trace.segment_skipped);
    assert_eq!(outcome.segments[1].trace.contributions_evaluated, 0);
    assert!(outcome.hits.iter().all(|h| h.row < 40));
}

/// Skipping needs the shared κ cell and the adaptive planner; without
/// either, every segment runs.
#[test]
fn no_skipping_without_kappa_sharing_or_under_uniform_planning() {
    let mut vectors = Vec::new();
    for _ in 0..30 {
        vectors.push(vec![0.1; 4]);
    }
    for _ in 0..30 {
        vectors.push(vec![0.9; 4]);
    }
    let table = Arc::new(DecomposedTable::from_vectors("no_skip", &vectors).unwrap());
    let query = vec![0.1; 4];

    for (planner, share) in [
        (PlannerKind::Uniform, true),
        (PlannerKind::Adaptive, false),
        (PlannerKind::Uniform, false),
    ] {
        let engine = Engine::builder(table.clone())
            .partitions(2)
            .threads(1)
            .rule(RuleKind::EuclideanEv)
            .planner(planner)
            .share_kappa(share)
            .build()
            .unwrap();
        let outcome = engine.search(&query, 3).unwrap();
        assert_eq!(outcome.segments_skipped(), 0, "planner {planner:?} share {share}");
        assert!(outcome.segments.iter().all(|s| s.trace.contributions_evaluated > 0));
    }
}
