//! The quantized scan modes' engine-level contract:
//!
//! * [`ScanMode::QuantizedFilter`] is **bit-identical** to
//!   [`ScanMode::Exact`] — for every rule, any partition count, either
//!   storage backend, and with cold or warmed feedback state. The code
//!   sweep may only discard rows whose optimistic interval bound provably
//!   cannot reach κ, so the exact refinement sees a superset of the true
//!   top k and produces the very same merged answer.
//! * [`ScanMode::ApproximateQuantized`] answers from the codes alone and
//!   every hit's reported error bound honestly brackets its exact score.
//! * Codes persisted in the store footer serve a reopened engine without
//!   re-encoding — zero-copy under the mapped backend.

use bond::BondError;
use bond_exec::{Engine, EngineBuilder, PlannerKind, QuerySpec, RequestBatch, RuleKind, ScanMode};
use bond_metrics::{DecomposableMetric, SquaredEuclidean};
use proptest::prelude::*;
use std::path::PathBuf;
use vdstore::{DecomposedTable, StorageBackend};

const DIMS: usize = 8;
const PARTITIONS: [usize; 4] = [1, 2, 3, 7];

/// A process-unique temp path, removed by the caller.
fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bond_exec_quantized_{tag}_{}", std::process::id()))
}

/// Deterministic, mildly skewed synthetic histograms.
fn table(rows: usize, dims: usize) -> DecomposedTable {
    let vectors: Vec<Vec<f64>> = (0..rows)
        .map(|r| {
            let mut v: Vec<f64> =
                (0..dims).map(|d| ((r * 31 + d * 17) % 97) as f64 + 1.0).collect();
            let total: f64 = v.iter().sum();
            v.iter_mut().for_each(|x| *x /= total);
            v
        })
        .collect();
    DecomposedTable::from_vectors("quantized", &vectors).unwrap()
}

#[test]
fn quantized_filter_is_bit_identical_for_every_rule_and_partitioning() {
    let t = table(400, DIMS);
    let queries: Vec<Vec<f64>> = (0..3).map(|i| t.row(i * 131).unwrap()).collect();
    let weighted: Vec<RuleKind> = vec![
        RuleKind::weighted_histogram(vec![1.0, 2.0, 0.0, 1.0, 4.0, 1.0, 1.0, 0.5]).unwrap(),
        RuleKind::weighted_euclidean(vec![0.5, 1.0, 3.0, 0.0, 1.0, 1.0, 2.0, 1.0]).unwrap(),
    ];
    for partitions in PARTITIONS {
        let engine = Engine::builder(t.clone()).partitions(partitions).threads(2).build().unwrap();
        for rule in RuleKind::ALL.into_iter().chain(weighted.iter().cloned()) {
            for q in &queries {
                let exact = QuerySpec::new(q.clone(), 10).rule(rule.clone());
                let filtered = exact.clone().scan_mode(ScanMode::QuantizedFilter);
                let expected = engine.search_spec(&exact).unwrap();
                let got = engine.search_spec(&filtered).unwrap();
                assert_eq!(got.hits, expected.hits, "rule {} partitions {partitions}", rule.name());
                // the filter phase actually ran and was accounted for
                assert!(got.quant_filter_cells() > 0, "rule {}", rule.name());
                assert!(got.quant_filter_selectivity().is_some());
                assert!(got.error_bounds.is_none(), "filtered answers are exact");
                assert_eq!(expected.quant_filter_cells(), 0);
            }
        }
    }
}

#[test]
fn quantized_filter_composes_with_adaptive_and_feedback_planning() {
    let t = table(360, DIMS);
    for planner in [PlannerKind::Adaptive, PlannerKind::Feedback] {
        let engine = Engine::builder(t.clone())
            .partitions(4)
            .threads(2)
            .planner(planner)
            .rule(RuleKind::EuclideanEv)
            .build()
            .unwrap();
        // warm the feedback store through the quantized path itself
        let warming: Vec<QuerySpec> = (0..40)
            .map(|i| {
                QuerySpec::new(engine.table().row(i * 9).unwrap(), 5)
                    .scan_mode(ScanMode::QuantizedFilter)
            })
            .collect();
        engine.execute(&RequestBatch::from_specs(warming)).unwrap();

        // cold or warm, the filtered answer is the exact answer
        for i in [7u32, 83, 211] {
            let q = engine.table().row(i).unwrap();
            let exact = engine.search_spec(&QuerySpec::new(q.clone(), 10)).unwrap();
            let filtered = engine
                .search_spec(&QuerySpec::new(q, 10).scan_mode(ScanMode::QuantizedFilter))
                .unwrap();
            assert_eq!(filtered.hits, exact.hits, "planner {planner:?} query {i}");
        }

        // the observed selectivity reached the learned per-segment state
        let snapshot = engine.feedback_snapshot();
        assert!(
            snapshot.segments.iter().any(|s| s.filter_selectivity().is_some()),
            "planner {planner:?}: quantized runs must feed selectivity back"
        );
    }
}

#[test]
fn observed_selectivity_discounts_the_quantized_cost_estimate() {
    let t = table(300, DIMS);
    let engine =
        Engine::builder(t).partitions(2).threads(1).planner(PlannerKind::Feedback).build().unwrap();
    let q = engine.table().row(150).unwrap();
    let spec = QuerySpec::new(q.clone(), 5).scan_mode(ScanMode::QuantizedFilter);
    let cold = engine.estimate_cost(&spec);
    // cold, the model assumes every row survives: filter + full exact cost
    assert!(cold > engine.estimate_cost(&QuerySpec::new(q, 5)));

    let warming: Vec<QuerySpec> = (0..40)
        .map(|i| {
            QuerySpec::new(engine.table().row(i * 7).unwrap(), 5)
                .scan_mode(ScanMode::QuantizedFilter)
        })
        .collect();
    engine.execute(&RequestBatch::from_specs(warming)).unwrap();
    let warm = engine.estimate_cost(&spec);
    assert!(
        warm < cold,
        "observed selectivity must shrink the refine estimate: warm {warm} vs cold {cold}"
    );
}

#[test]
fn approximate_mode_reports_honest_error_bounds() {
    let t = table(300, DIMS);
    let engine =
        Engine::builder(t).partitions(3).threads(2).rule(RuleKind::EuclideanEq).build().unwrap();
    for i in [3u32, 77, 240] {
        let q = engine.table().row(i).unwrap();
        let k = 10;
        let approx = engine
            .search_spec(
                &QuerySpec::new(q.clone(), k).scan_mode(ScanMode::ApproximateQuantized { bits: 8 }),
            )
            .unwrap();
        assert_eq!(approx.hits.len(), k);
        let bounds = approx.error_bounds.as_ref().expect("approximate answers carry bounds");
        assert_eq!(bounds.len(), approx.hits.len());
        for (hit, &err) in approx.hits.iter().zip(bounds) {
            assert!(err.is_finite() && err >= 0.0);
            let exact = SquaredEuclidean.score(&engine.table().row(hit.row).unwrap(), &q);
            assert!(
                (hit.score - exact).abs() <= err + 1e-9,
                "row {}: |{} - {exact}| > {err}",
                hit.row,
                hit.score
            );
        }
        // codes-only: not a single exact cell was read
        assert_eq!(approx.contributions_evaluated(), 0);
        assert!(approx.quant_filter_cells() > 0);
        // 8-bit codes on this collection recover most of the exact top k
        let exact_rows: Vec<u32> =
            engine.search_spec(&QuerySpec::new(q, k)).unwrap().hits.iter().map(|h| h.row).collect();
        let recalled = approx.hits.iter().filter(|h| exact_rows.contains(&h.row)).count();
        assert!(recalled * 2 >= k, "recall@{k} collapsed: {recalled}/{k} for query row {i}");
    }
}

#[test]
fn coarse_approximate_codes_widen_bounds_but_stay_honest() {
    let t = table(200, DIMS);
    let engine = Engine::builder(t).partitions(2).threads(1).build().unwrap();
    let q = engine.table().row(60).unwrap();
    let mut last_mean = 0.0f64;
    for bits in [8u8, 4, 2] {
        let outcome = engine
            .search_spec(
                &QuerySpec::new(q.clone(), 5).scan_mode(ScanMode::ApproximateQuantized { bits }),
            )
            .unwrap();
        let bounds = outcome.error_bounds.unwrap();
        let mean = bounds.iter().sum::<f64>() / bounds.len() as f64;
        assert!(
            mean + 1e-12 >= last_mean,
            "coarser codes cannot tighten the mean bound: {bits} bits gave {mean} after {last_mean}"
        );
        last_mean = mean;
    }
}

#[test]
fn engine_default_scan_mode_applies_and_spec_overrides_win() {
    let t = table(200, DIMS);
    let engine = Engine::builder(t)
        .partitions(2)
        .threads(1)
        .scan_mode(ScanMode::QuantizedFilter)
        .build()
        .unwrap();
    assert_eq!(engine.scan_mode(), ScanMode::QuantizedFilter);
    let q = engine.table().row(20).unwrap();
    // engine default: the filter runs without any per-spec opt-in
    let defaulted = engine.search(&q, 5).unwrap();
    assert!(defaulted.quant_filter_cells() > 0);
    // a per-spec override turns it back off
    let exact =
        engine.search_spec(&QuerySpec::new(q.clone(), 5).scan_mode(ScanMode::Exact)).unwrap();
    assert_eq!(exact.quant_filter_cells(), 0);
    assert_eq!(defaulted.hits, exact.hits);
    // and the quant metrics were emitted for the filtered run only
    assert!(engine.metrics().counter_value("engine.quant.filter_cells").unwrap() > 0);
    assert!(engine.metrics().counter_value("engine.quant.refine_rows").is_some());
}

#[test]
fn invalid_approximate_bit_widths_are_rejected_up_front() {
    let t = table(50, DIMS);
    for bits in [0u8, 9, 255] {
        assert!(matches!(
            Engine::builder(t.clone()).scan_mode(ScanMode::ApproximateQuantized { bits }).build(),
            Err(BondError::InvalidParams(_))
        ));
        let engine = Engine::builder(t.clone()).partitions(2).threads(1).build().unwrap();
        let q = engine.table().row(0).unwrap();
        let spec = QuerySpec::new(q, 1).scan_mode(ScanMode::ApproximateQuantized { bits });
        assert!(matches!(engine.search_spec(&spec), Err(BondError::InvalidParams(_))));
    }
}

#[test]
fn explain_renders_filter_and_refine_phases_that_sum_to_the_estimate() {
    let t = table(240, DIMS);
    let engine = Engine::builder(t).partitions(3).threads(1).build().unwrap();
    let q = engine.table().row(100).unwrap();
    let spec = QuerySpec::new(q, 7).scan_mode(ScanMode::QuantizedFilter);
    let explain = engine.explain(&spec).unwrap();
    assert_eq!(explain.scan, ScanMode::QuantizedFilter);
    for seg in &explain.segments {
        let filter = seg.filter_cost.expect("filter phase estimated");
        let refine = seg.refine_cost.expect("refine phase estimated");
        assert!(filter > 0.0);
        assert!(
            (filter + refine - seg.estimated_cells).abs() <= 1e-9 * seg.estimated_cells.max(1.0),
            "phases must sum to the total estimate"
        );
    }
    let rendered = explain.to_string();
    assert!(rendered.contains("scan=quantized-filter"), "{rendered}");
    assert!(rendered.contains("filter="), "{rendered}");

    // exact plans carry no phase split
    let exact = engine.explain(&QuerySpec::new(engine.table().row(0).unwrap(), 7)).unwrap();
    assert_eq!(exact.scan, ScanMode::Exact);
    assert!(exact.segments.iter().all(|s| s.filter_cost.is_none() && s.refine_cost.is_none()));

    // ANALYZE joins the executed filter counters against the plan
    let outcome = engine.search_spec(&spec).unwrap();
    let analysis = outcome.analyze(&explain);
    assert_eq!(analysis.filter_cells(), outcome.quant_filter_cells());
    assert!(analysis.segments.iter().any(|s| s.filter_cells > 0));
    let shown = analysis.to_string();
    assert!(shown.contains("filter_cells="), "{shown}");
}

#[test]
fn persisted_codes_serve_reopened_engines_without_reencoding() {
    let t = table(320, DIMS);
    let path = temp_store("roundtrip");
    let original = Engine::builder(t).partitions(4).threads(2).build().unwrap();
    original.persist(&path).unwrap();
    let queries: Vec<Vec<f64>> = (0..3).map(|i| original.table().row(i * 101).unwrap()).collect();

    for backend in [StorageBackend::Heap, StorageBackend::Mapped] {
        let reopened = EngineBuilder::open_with(&path, backend)
            .unwrap()
            .threads(2)
            .scan_mode(ScanMode::QuantizedFilter)
            .build()
            .unwrap();
        // the footer's codes seed the engine cache: under the mapped
        // backend the 8-bit codes are zero-copy views of the file, proof
        // they were not re-encoded from the f64 columns
        let codes = reopened.ensure_codes(8).unwrap();
        if backend == StorageBackend::Mapped && StorageBackend::mapping_supported() {
            assert!(codes.is_mapped(), "persisted codes must be viewed, not rebuilt");
        }
        for rule in RuleKind::ALL {
            for q in &queries {
                let exact = QuerySpec::new(q.clone(), 10).rule(rule.clone());
                let expected = original.search_spec(&exact).unwrap();
                let got = reopened.search_spec(&exact.clone().scan_mode(ScanMode::QuantizedFilter));
                assert_eq!(
                    got.unwrap().hits,
                    expected.hits,
                    "rule {} backend {backend:?}",
                    rule.name()
                );
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupting_the_codes_section_fails_the_open() {
    let t = table(100, DIMS);
    let path = temp_store("corrupt");
    Engine::builder(t).partitions(2).threads(1).build().unwrap().persist(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // the codes section ends with the per-dimension code checksums, just
    // before the 24-byte footer trailer — flip a bit inside it
    let n = bytes.len();
    bytes[n - 32] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let err = EngineBuilder::open_with(&path, StorageBackend::Heap).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, BondError::Storage(vdstore::VdError::Corrupt(_))),
        "codes corruption must be a typed open error, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random collections, random query, every rule: the quantized filter
    /// never changes a single bit of the answer.
    #[test]
    fn quantized_filter_identity_holds_on_random_collections(
        vectors in proptest::collection::vec(
            proptest::collection::vec(0.001f64..1.0, DIMS), 20..80),
        qi in 0usize..80,
        partitions in 1usize..5,
        k in 1usize..8,
    ) {
        let t = DecomposedTable::from_vectors("prop", &vectors).unwrap();
        let query = vectors[qi % vectors.len()].clone();
        let engine = Engine::builder(t).partitions(partitions).threads(2).build().unwrap();
        let k = k.min(engine.table().live_rows());
        for rule in RuleKind::ALL {
            let exact = QuerySpec::new(query.clone(), k).rule(rule.clone());
            let filtered = exact.clone().scan_mode(ScanMode::QuantizedFilter);
            let expected = engine.search_spec(&exact).unwrap();
            let got = engine.search_spec(&filtered).unwrap();
            prop_assert_eq!(&got.hits, &expected.hits, "rule {}", rule.name());
        }
    }
}

/// Tombstoned rows stay invisible through both quantized modes.
#[test]
fn deleted_rows_never_surface_from_the_code_sweep() {
    let mut t = table(150, DIMS);
    let q = t.row(75).unwrap();
    t.delete(75).unwrap();
    let engine = Engine::builder(t).partitions(3).threads(2).build().unwrap();
    for scan in [ScanMode::QuantizedFilter, ScanMode::ApproximateQuantized { bits: 8 }] {
        let outcome = engine.search_spec(&QuerySpec::new(q.clone(), 5).scan_mode(scan)).unwrap();
        assert_eq!(outcome.hits.len(), 5);
        assert!(outcome.hits.iter().all(|h| h.row != 75), "{scan:?}");
    }
}
