//! The engine's contract: partitioned, parallel, κ-sharing execution
//! returns *exactly* what the sequential searcher returns — same row ids,
//! bit-identical scores — for every pruning rule, any partition count and
//! any k. A divergence would mean either an unsafe shared bound (a true
//! neighbour pruned) or a merge bug, both answer-corrupting, so this is
//! exercised as a property over random collections and, separately, at
//! serving scale on a 50k-row synthetic table.

use bond::{BondParams, BondSearcher};
use bond_datagen::{sample_queries, ClusteredConfig, CorelLikeConfig};
use bond_exec::{Engine, RequestBatch, RuleKind};
use proptest::prelude::*;
use std::sync::Arc;
use vdstore::topk::Scored;
use vdstore::DecomposedTable;

const DIMS: usize = 8;
const PARTITIONS: [usize; 4] = [1, 2, 3, 7];

/// A random collection of normalized histograms plus a query index.
fn histogram_collection() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, DIMS), 30..90), 0usize..30)
        .prop_map(|(mut vectors, qi)| {
            for v in &mut vectors {
                let total: f64 = v.iter().sum();
                if total <= 0.0 {
                    v[0] = 1.0;
                } else {
                    for x in v.iter_mut() {
                        *x /= total;
                    }
                }
            }
            (vectors, qi)
        })
}

fn sequential_hits(
    table: &DecomposedTable,
    rule: &RuleKind,
    query: &[f64],
    k: usize,
    params: &BondParams,
) -> Vec<Scored> {
    let searcher = BondSearcher::new(table);
    let metric = rule.make_metric();
    let mut rule_instance = rule.make_rule();
    searcher
        .search_with_rule(query, metric.as_ref(), rule_instance.as_mut(), k, None, params)
        .expect("sequential search succeeds")
        .hits
}

fn assert_bit_identical(parallel: &[Scored], sequential: &[Scored], context: &str) {
    assert_eq!(parallel.len(), sequential.len(), "{context}: hit counts differ");
    for (p, s) in parallel.iter().zip(sequential) {
        assert_eq!(p.row, s.row, "{context}: row ids diverge");
        assert_eq!(
            p.score.to_bits(),
            s.score.to_bits(),
            "{context}: scores are not bit-identical ({} vs {})",
            p.score,
            s.score
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn partitioned_search_is_bit_identical_to_sequential(
        (vectors, qi) in histogram_collection(),
    ) {
        let table = Arc::new(DecomposedTable::from_vectors("prop", &vectors).unwrap());
        let query = vectors[qi % vectors.len()].clone();
        let params = BondParams::default();
        let n = table.rows();
        for rule in RuleKind::ALL {
            for partitions in PARTITIONS {
                for k in [1, 10.min(n), n] {
                    let engine = Engine::builder(table.clone())
                        .partitions(partitions)
                        .threads(3)
                        .rule(rule.clone())
                        .params(params.clone())
                        .build()
                        .unwrap();
                    let parallel = engine.search(&query, k).unwrap();
                    let sequential = sequential_hits(&table, &rule, &query, k, &params);
                    let context = format!(
                        "rule {} partitions {partitions} k {k} rows {n}",
                        rule.name()
                    );
                    assert_bit_identical(&parallel.hits, &sequential, &context);
                }
            }
        }
    }

    #[test]
    fn batched_execution_matches_per_query_searches(
        (vectors, _) in histogram_collection(),
        k in 1usize..=5,
    ) {
        let table = DecomposedTable::from_vectors("batch", &vectors).unwrap();
        let queries: Vec<Vec<f64>> =
            vectors.iter().step_by(vectors.len().div_ceil(4).max(1)).cloned().collect();
        let engine = Engine::builder(table).partitions(3).threads(2).build().unwrap();
        let outcome = engine
            .execute(&RequestBatch::from_queries(queries.clone(), k))
            .unwrap();
        for (q, merged) in queries.iter().zip(&outcome.queries) {
            let single = engine.search(q, k).unwrap();
            assert_eq!(single.hits, merged.hits);
        }
    }
}

/// The acceptance-scale check: a ≥50k-row synthetic table, 4+ partitions,
/// bit-identical answers for both metric families under every rule.
#[test]
fn serving_scale_bit_identity_50k() {
    let k = 10;
    let params = BondParams::default();

    // Corel-like histograms for the histogram-intersection rules.
    let histograms = Arc::new(CorelLikeConfig::small(50_000, 24).generate());
    // Clustered unit-cube vectors for the Euclidean rules.
    let clustered = Arc::new(ClusteredConfig::small(50_000, 16, 0.5).generate());

    for rule in RuleKind::ALL {
        let table = match rule.objective() {
            bond_metrics::Objective::Maximize => &histograms,
            bond_metrics::Objective::Minimize => &clustered,
        };
        let queries = sample_queries(table, 3, 7);
        let engine = Engine::builder(table.clone())
            .partitions(5)
            .threads(4)
            .rule(rule.clone())
            .params(params.clone())
            .build()
            .unwrap();
        assert!(engine.partitions() >= 4);
        for query in &queries {
            let parallel = engine.search(query, k).unwrap();
            let sequential = sequential_hits(table, &rule, query, k, &params);
            let context = format!("50k-row table, rule {}", rule.name());
            assert_bit_identical(&parallel.hits, &sequential, &context);
        }
    }
}
