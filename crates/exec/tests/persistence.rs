//! The persistent segment store's engine-level contract: an engine reopened
//! from disk — through either storage backend — is indistinguishable from
//! the engine that persisted it. Uniform planning stays bit-identical,
//! adaptive planning stays rank-correct, the footer statistics are
//! bit-exact copies of the build-time statistics (so zone-map skipping
//! fires without reading any column data), and malformed files surface
//! typed errors instead of panics.

use bond::BondError;
use bond_exec::{Engine, EngineBuilder, PlannerKind, QuerySpec, RequestBatch, RuleKind};
use proptest::prelude::*;
use std::path::PathBuf;
use vdstore::topk::Scored;
use vdstore::{DecomposedTable, StorageBackend, VdError};

const DIMS: usize = 8;

/// A process-unique temp path, removed by the caller.
fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bond_exec_persistence_{tag}_{}", std::process::id()))
}

/// Deterministic, mildly skewed synthetic histograms.
fn table(rows: usize, dims: usize) -> DecomposedTable {
    let vectors: Vec<Vec<f64>> = (0..rows)
        .map(|r| {
            let mut v: Vec<f64> =
                (0..dims).map(|d| ((r * 31 + d * 17) % 97) as f64 + 1.0).collect();
            let total: f64 = v.iter().sum();
            v.iter_mut().for_each(|x| *x /= total);
            v
        })
        .collect();
    DecomposedTable::from_vectors("persisted", &vectors).unwrap()
}

fn assert_rank_correct(got: &[Scored], reference: &[Scored], context: &str) {
    assert_eq!(got.len(), reference.len(), "{context}: hit counts differ");
    for (i, (a, r)) in got.iter().zip(reference).enumerate() {
        assert_eq!(a.row, r.row, "{context}: rank {i} row diverges");
        assert!(
            (a.score - r.score).abs() <= 1e-9 * r.score.abs().max(1.0),
            "{context}: rank {i} score {} vs reference {}",
            a.score,
            r.score
        );
    }
}

#[test]
fn reopened_engines_answer_bit_identically_for_every_rule_and_backend() {
    let t = table(400, DIMS);
    let queries: Vec<Vec<f64>> = (0..4).map(|i| t.row(i * 97).unwrap()).collect();
    let path = temp_store("bitident");
    let original =
        Engine::builder(t).partitions(4).threads(2).build().expect("valid configuration");
    original.persist(&path).expect("store persists");

    for backend in [StorageBackend::Heap, StorageBackend::Mapped] {
        let reopened = EngineBuilder::open_with(&path, backend)
            .expect("store reopens")
            .threads(2)
            .build()
            .expect("reopened engine builds");
        assert_eq!(reopened.partitions(), original.partitions());
        for rule in RuleKind::ALL {
            for q in &queries {
                let spec = QuerySpec::new(q.clone(), 10).rule(rule.clone());
                let expected = original.search_spec(&spec).unwrap();
                let got = reopened.search_spec(&spec).unwrap();
                assert_eq!(got.hits, expected.hits, "rule {} backend {backend:?}", rule.name());
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn reopened_footer_stats_are_bit_exact_copies_of_build_time_stats() {
    let t = table(300, DIMS);
    let path = temp_store("stats");
    let original = Engine::builder(t).partitions(3).threads(1).build().unwrap();
    original.persist(&path).unwrap();

    let reopened =
        EngineBuilder::open_with(&path, StorageBackend::Mapped).unwrap().build().unwrap();
    assert_eq!(reopened.segment_specs(), original.segment_specs());
    assert_eq!(reopened.segment_stats(), original.segment_stats(), "bit-exact footer stats");
    std::fs::remove_file(&path).unwrap();
}

/// Two well-separated clusters persisted and reopened: the zone-map skip on
/// the far segment must fire in the *reopened* engine, driven purely by the
/// footer's envelopes — the skipped segment's trace proves no column data
/// was read for it.
#[test]
fn segment_skipping_fires_from_persisted_zone_maps() {
    let dims = DIMS;
    let mut vectors = Vec::new();
    for i in 0..50 {
        vectors.push(vec![0.1 + (i % 10) as f64 * 1e-3; dims]);
    }
    for i in 0..50 {
        vectors.push(vec![0.9 - (i % 10) as f64 * 1e-3; dims]);
    }
    let t = DecomposedTable::from_vectors("two_clusters", &vectors).unwrap();
    let query = vectors[0].clone();
    let path = temp_store("zonemap");
    Engine::builder(t)
        .partitions(2)
        .threads(1)
        .rule(RuleKind::EuclideanEv)
        .build()
        .unwrap()
        .persist(&path)
        .unwrap();

    for backend in [StorageBackend::Heap, StorageBackend::Mapped] {
        let engine = EngineBuilder::open_with(&path, backend)
            .unwrap()
            .threads(1) // deterministic task order: segment 0 proves κ first
            .rule(RuleKind::EuclideanEv)
            .planner(PlannerKind::Adaptive)
            .build()
            .unwrap();
        let outcome = engine.search(&query, 5).unwrap();
        assert_eq!(outcome.segments_skipped(), 1, "backend {backend:?}");
        let skipped = &outcome.segments[1].trace;
        assert!(skipped.segment_skipped);
        assert_eq!(skipped.contributions_evaluated, 0, "zero column touches on the far segment");
        assert_eq!(skipped.dims_accessed, 0);
        assert!(outcome.hits.iter().all(|h| h.row < 50));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn open_errors_are_typed_not_panics() {
    let missing = temp_store("missing");
    assert!(matches!(
        EngineBuilder::open_with(&missing, StorageBackend::Heap),
        Err(BondError::Storage(VdError::Io(_)))
    ));

    // a valid store, then truncated / corrupted variants
    let t = table(60, DIMS);
    let path = temp_store("mangled");
    Engine::builder(t).partitions(2).threads(1).build().unwrap().persist(&path).unwrap();
    let good = std::fs::read(&path).unwrap();

    for cut in [0, 6, 24, good.len() / 2, good.len() - 1] {
        std::fs::write(&path, &good[..cut]).unwrap();
        for backend in [StorageBackend::Heap, StorageBackend::Mapped] {
            let err = EngineBuilder::open_with(&path, backend).map(|_| ()).unwrap_err();
            assert!(
                matches!(
                    err,
                    BondError::Storage(VdError::Corrupt(_))
                        | BondError::Storage(VdError::UnsupportedVersion { .. })
                ),
                "cut {cut} backend {backend:?}: {err}"
            );
        }
    }

    // a v1 magic reports the version gap
    let mut v1 = good.clone();
    v1[7] = b'1';
    std::fs::write(&path, &v1).unwrap();
    assert!(matches!(
        EngineBuilder::open_with(&path, StorageBackend::Heap),
        Err(BondError::Storage(VdError::UnsupportedVersion { found: 1, supported: 2 }))
    ));
    std::fs::remove_file(&path).unwrap();
}

/// A hand-assembled `PersistedStore` goes through the same shared layout
/// validator the store writers use: zero-length or non-tiling segments are
/// rejected at `build()`, not silently planned over.
#[test]
fn hand_assembled_stores_are_validated_at_build() {
    let t = table(50, DIMS);
    let path = temp_store("handmade");
    Engine::builder(t).partitions(2).threads(1).build().unwrap().persist(&path).unwrap();
    let mut store = vdstore::persist::open_store(&path, StorageBackend::Heap).unwrap();
    // inject a zero-length segment (with a matching stats entry, so only
    // the emptiness itself is at fault)
    let empty_spec = vdstore::SegmentSpec::new(store.specs[1].start(), 0);
    let empty_stats = empty_spec.view(&store.table).unwrap().stats();
    store.specs.insert(1, empty_spec);
    store.stats.insert(1, empty_stats);
    let err = EngineBuilder::from_store(store).build().map(|_| ()).unwrap_err();
    assert!(
        matches!(err, BondError::Storage(VdError::InvalidArgument(_))),
        "zero-length persisted segment must be rejected, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Weighted rules (including 0-weight subspace queries) agree across
    /// the persist/reopen boundary on both backends, rank-correctly under
    /// adaptive planning and bit-identically under uniform planning.
    #[test]
    fn weighted_rule_queries_agree_across_backends(
        vectors in proptest::collection::vec(
            proptest::collection::vec(0.01f64..1.0, DIMS), 20..60),
        weights in proptest::collection::vec(0.0f64..4.0, DIMS),
        qi in 0usize..60,
        euclidean in proptest::bool::ANY,
    ) {
        let mut weights = weights;
        if weights.iter().all(|&w| w == 0.0) {
            weights[0] = 1.0;
        }
        let rule = if euclidean {
            RuleKind::weighted_euclidean(weights).unwrap()
        } else {
            RuleKind::weighted_histogram(weights).unwrap()
        };
        let t = DecomposedTable::from_vectors("weighted", &vectors).unwrap();
        let query = vectors[qi % vectors.len()].clone();
        let k = 5.min(vectors.len());

        let path = temp_store(if euclidean { "weighted_e" } else { "weighted_h" });
        let original = Engine::builder(t)
            .partitions(3)
            .threads(2)
            .rule(rule.clone())
            .build()
            .unwrap();
        original.persist(&path).unwrap();
        let uniform_expected = original.search(&query, k).unwrap();
        let reference = original.sequential_reference(&query, k).unwrap();

        for backend in [StorageBackend::Heap, StorageBackend::Mapped] {
            let reopened = EngineBuilder::open_with(&path, backend)
                .unwrap()
                .threads(2)
                .rule(rule.clone())
                .build()
                .unwrap();
            let uniform = reopened.search(&query, k).unwrap();
            prop_assert_eq!(&uniform.hits, &uniform_expected.hits, "uniform {:?}", backend);
            let adaptive = reopened
                .search_spec(&QuerySpec::new(query.clone(), k).planner(PlannerKind::Adaptive))
                .unwrap();
            assert_rank_correct(&adaptive.hits, &reference, &format!("adaptive {backend:?}"));
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Persist → reopen → search round-trips rank-correctly for all four
    /// unweighted rules under adaptive planning, with tombstones persisted.
    #[test]
    fn adaptive_reopened_engines_are_rank_correct(
        rows in 30usize..120,
        deleted in proptest::collection::vec(0u32..120, 0..6),
        qi in 0usize..120,
    ) {
        let mut t = table(rows, DIMS);
        for &d in &deleted {
            if (d as usize) < rows {
                t.delete(d).unwrap();
            }
        }
        let query = t.row(qi as u32 % rows as u32).unwrap();
        let k = 5.min(t.live_rows());
        prop_assume!(k > 0);

        let path = temp_store("adaptive");
        let original = Engine::builder(t).partitions(3).threads(2).build().unwrap();
        original.persist(&path).unwrap();
        let reopened = EngineBuilder::open_with(&path, StorageBackend::from_env())
            .unwrap()
            .threads(2)
            .build()
            .unwrap();
        prop_assert_eq!(reopened.table().live_rows(), original.table().live_rows());
        for rule in RuleKind::ALL {
            let spec = QuerySpec::new(query.clone(), k)
                .rule(rule.clone())
                .planner(PlannerKind::Adaptive);
            let reference = original.sequential_reference_spec(&spec).unwrap();
            let got = reopened.search_spec(&spec).unwrap();
            assert_rank_correct(&got.hits, &reference, rule.name());
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// A reopened mapped engine stays `Send + Sync + 'static` and survives the
/// stack frame of its open — the whole point of the owned-engine design.
#[test]
fn reopened_mapped_engine_is_shareable() {
    fn assert_send_sync_static<T: Send + Sync + 'static>(_: &T) {}
    let path = temp_store("shareable");
    Engine::builder(table(120, DIMS))
        .partitions(2)
        .threads(1)
        .build()
        .unwrap()
        .persist(&path)
        .unwrap();

    let engine = EngineBuilder::open_with(&path, StorageBackend::Mapped).unwrap().build().unwrap();
    assert_send_sync_static(&engine);
    if StorageBackend::mapping_supported() {
        assert_eq!(engine.storage_backend(), StorageBackend::Mapped);
    }
    let q = engine.table().row(7).unwrap();
    let clone = engine.clone();
    let hits = std::thread::spawn(move || clone.search(&q, 3).unwrap().hits).join().unwrap();
    let q = engine.table().row(7).unwrap();
    assert_eq!(hits, engine.search(&q, 3).unwrap().hits);

    // batches over a mapped table behave like any other batch
    let batch = RequestBatch::from_queries(vec![engine.table().row(1).unwrap()], 4);
    assert_eq!(engine.execute(&batch).unwrap().queries.len(), 1);
    std::fs::remove_file(&path).unwrap();
}

/// Calling `.partitions(n)` on an opened builder deliberately discards the
/// footer's boundaries and recomputes from the (possibly mapped) columns —
/// the repartitioned engine must still answer identically to a fresh
/// in-memory engine with the same partition count.
#[test]
fn repartitioning_a_reopened_store_recomputes_consistently() {
    let t = table(200, DIMS);
    let path = temp_store("repartition");
    let original = Engine::builder(t.clone()).partitions(4).threads(1).build().unwrap();
    original.persist(&path).unwrap();

    let repartitioned = EngineBuilder::open_with(&path, StorageBackend::Mapped)
        .unwrap()
        .partitions(7)
        .threads(1)
        .build()
        .unwrap();
    assert_eq!(repartitioned.partitions(), 7);
    let fresh = Engine::builder(t).partitions(7).threads(1).build().unwrap();
    assert_eq!(repartitioned.segment_specs(), fresh.segment_specs());
    assert_eq!(repartitioned.segment_stats(), fresh.segment_stats());
    let q = fresh.table().row(42).unwrap();
    assert_eq!(repartitioned.search(&q, 9).unwrap().hits, fresh.search(&q, 9).unwrap().hits);
    std::fs::remove_file(&path).unwrap();
}

/// Learned feedback state persists alongside the store footer: a warmed
/// engine's snapshot survives the process boundary bit for bit, and the
/// reopened engine's `Feedback` planner starts warm — while repartitioning
/// (which invalidates per-segment learning) starts cold again.
#[test]
fn warmed_feedback_state_survives_persist_and_reopen() {
    let t = table(240, DIMS);
    let path = temp_store("feedback_roundtrip");
    let engine = Engine::builder(t)
        .partitions(4)
        .threads(2)
        .rule(RuleKind::EuclideanEv)
        .planner(PlannerKind::Feedback)
        .build()
        .unwrap();

    // warm the store, then persist
    let warming: Vec<QuerySpec> =
        (0..60).map(|i| QuerySpec::new(engine.table().row(i * 4).unwrap(), 5)).collect();
    engine.execute(&RequestBatch::from_specs(warming)).unwrap();
    let snapshot = engine.feedback_snapshot();
    assert!(snapshot.total_searches() > 0);
    engine.persist(&path).unwrap();

    for backend in [StorageBackend::Heap, StorageBackend::Mapped] {
        let reopened = EngineBuilder::open_with(&path, backend)
            .unwrap()
            .threads(2)
            .rule(RuleKind::EuclideanEv)
            .planner(PlannerKind::Feedback)
            .build()
            .unwrap();
        assert_eq!(
            reopened.feedback_snapshot(),
            snapshot,
            "learned state is a bit-exact copy under {backend:?}"
        );
        // estimates reflect the restored observations (identical inputs →
        // identical estimates). Compare before searching: executing a
        // query folds fresh feedback and would shift the estimate.
        let q = reopened.table().row(17).unwrap();
        let spec = QuerySpec::new(q.clone(), 7);
        assert_eq!(reopened.estimate_cost(&spec), engine.estimate_cost(&spec));
        // a warmed reopened engine still answers rank-correctly
        let outcome = reopened.search(&q, 7).unwrap();
        let reference = reopened.sequential_reference(&q, 7).unwrap();
        assert_rank_correct(&outcome.hits, &reference, &format!("warm reopen {backend:?}"));
    }

    // repartitioning discards the (now-misaligned) learned state
    let repartitioned = EngineBuilder::open(&path).unwrap().partitions(7).build().unwrap();
    assert_eq!(repartitioned.feedback_snapshot().total_searches(), 0);
    std::fs::remove_file(&path).unwrap();
}

/// A corrupted learned-state payload is a typed open error, not a panic —
/// and never silently degrades into a cold engine.
#[test]
fn corrupt_learned_state_is_a_typed_build_error() {
    let t = table(120, DIMS);
    let path = temp_store("feedback_corrupt");
    let engine = Engine::builder(t).partitions(3).threads(1).build().unwrap();
    engine.execute(&RequestBatch::from_queries(vec![engine.table().row(0).unwrap()], 3)).unwrap();
    engine.persist(&path).unwrap();

    // locate the learned payload (it starts with the feedback magic) and
    // flip a byte in it
    let bytes = std::fs::read(&path).unwrap();
    let magic = b"BONDFB01";
    let pos = bytes.windows(magic.len()).rposition(|w| w == magic).expect("payload present");
    let mut corrupted = bytes.clone();
    corrupted[pos] = b'X';
    std::fs::write(&path, &corrupted).unwrap();

    // as-is, the *footer checksum* catches the flip at open time
    let err = EngineBuilder::open_with(&path, StorageBackend::Heap)
        .expect_err("footer corruption must fail the open");
    assert!(matches!(err, BondError::Storage(VdError::Corrupt(_))), "{err}");

    // patch the footer checksum to match the corrupted bytes: the open now
    // succeeds and the *payload decoder's* own validation must catch the
    // bad magic at build time instead (a corrupt learned state never
    // silently degrades into a cold engine)
    let n = corrupted.len();
    let footer_offset = u64::from_le_bytes(corrupted[n - 16..n - 8].try_into().unwrap()) as usize;
    let patched = vdstore::checksum::fnv1a(&corrupted[footer_offset..n - 24]);
    corrupted[n - 24..n - 16].copy_from_slice(&patched.to_le_bytes());
    std::fs::write(&path, &corrupted).unwrap();
    let err = EngineBuilder::open_with(&path, StorageBackend::Heap)
        .unwrap()
        .build()
        .expect_err("corrupt learned state must fail the build");
    assert!(matches!(err, BondError::Storage(VdError::Corrupt(_))), "{err}");
    std::fs::remove_file(&path).unwrap();
}

/// Fragment checksums guard reopened engines end to end: a heap open of a
/// bit-flipped data region fails with the typed mismatch, while a mapped
/// open stays lazy and serves reads (verification is deferred to
/// copy-on-write promotion, covered in the vdstore unit tests).
#[test]
fn fragment_corruption_fails_heap_reopen_with_a_typed_error() {
    let t = table(100, DIMS);
    let path = temp_store("checksum_guard");
    let engine = Engine::builder(t).partitions(2).threads(1).build().unwrap();
    engine.persist(&path).unwrap();

    // flip one byte in the middle of the data region
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = 64 + (100 * DIMS * 8) / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let err = EngineBuilder::open_with(&path, StorageBackend::Heap).unwrap_err();
    assert!(
        matches!(err, BondError::Storage(VdError::ChecksumMismatch { .. })),
        "heap reopen must surface the checksum mismatch, got {err}"
    );
    std::fs::remove_file(&path).unwrap();
}
