//! The request API's contract: a heterogeneous [`RequestBatch`] — every
//! spec with its own `k`, pruning rule and planner — answers each query
//! exactly as if it were asked alone, and each answer matches the
//! per-query sequential reference. Mixing must never leak state between
//! queries: κ cells are per query, rules are instantiated per
//! `(query, segment)` task, and the merge ranks under each query's own
//! objective. Also exercised here: the `Server` front-end routes
//! concurrently submitted requests back to the right submitters.

use bond_exec::{Engine, PlannerKind, QuerySpec, RequestBatch, RuleKind, Server};
use proptest::prelude::*;
use std::sync::Arc;
use vdstore::topk::Scored;
use vdstore::DecomposedTable;

const DIMS: usize = 8;
const PARTITIONS: [usize; 4] = [1, 2, 3, 7];

/// Random normalized histograms (valid under every rule family), each
/// duplicated once so the deterministic tie-break is exercised, plus a
/// seed for spec assignment.
fn duplicated_collection() -> impl Strategy<Value = (Vec<Vec<f64>>, u64)> {
    (
        proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, DIMS), 15..40),
        0u64..1_000_000,
    )
        .prop_map(|(mut vectors, seed)| {
            for v in &mut vectors {
                let total: f64 = v.iter().sum();
                if total <= 0.0 {
                    v[0] = 1.0;
                } else {
                    for x in v.iter_mut() {
                        *x /= total;
                    }
                }
            }
            let dupes: Vec<Vec<f64>> = vectors.clone();
            vectors.extend(dupes);
            (vectors, seed)
        })
}

/// The rules a batch cycles through: all four unweighted kinds plus both
/// weighted families (one subspace-ish profile each).
fn mixed_rules() -> Vec<RuleKind> {
    let mut weights = vec![1.0; DIMS];
    weights[0] = 4.0;
    weights[DIMS - 1] = 0.0;
    let mut rules: Vec<RuleKind> = RuleKind::ALL.to_vec();
    rules.push(RuleKind::weighted_histogram(weights.clone()).unwrap());
    rules.push(RuleKind::weighted_euclidean(weights).unwrap());
    rules
}

/// Same k-NN set *and ranks*; scores equal up to floating-point summation
/// order (adaptive merges re-verify in a fixed order, uniform merges are
/// bit-identical — both are within this tolerance of the reference).
fn assert_rank_correct(answer: &[Scored], reference: &[Scored], context: &str) {
    assert_eq!(answer.len(), reference.len(), "{context}: hit counts differ");
    for (i, (a, r)) in answer.iter().zip(reference).enumerate() {
        assert_eq!(a.row, r.row, "{context}: rank {i} row diverges");
        assert!(
            (a.score - r.score).abs() <= 1e-9 * r.score.abs().max(1.0),
            "{context}: rank {i} score {} vs reference {}",
            a.score,
            r.score
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A batch mixing every rule kind, a spread of ks, and (when the case
    /// says so) per-query planner overrides answers every spec exactly
    /// like the per-query sequential reference — for any partition count
    /// and under both engine-default planners.
    #[test]
    fn mixed_k_mixed_rule_batches_match_per_query_references(
        (vectors, seed) in duplicated_collection(),
    ) {
        let table = Arc::new(DecomposedTable::from_vectors("hetero", &vectors).unwrap());
        let n = table.rows();
        let rules = mixed_rules();
        let specs: Vec<QuerySpec> = (0..6)
            .map(|i| {
                let qi = (seed as usize + i * 7) % vectors.len();
                let k = [1, 3.min(n), 10.min(n), n][(seed as usize + i) % 4];
                let mut spec = QuerySpec::new(vectors[qi].clone(), k)
                    .rule(rules[i % rules.len()].clone());
                // every batch mixes planners too: half the specs override
                spec = match i % 2 {
                    0 => spec.planner(PlannerKind::Adaptive),
                    _ => spec.planner(PlannerKind::Uniform),
                };
                spec
            })
            .collect();
        let batch = RequestBatch::from_specs(specs.clone());

        for default_planner in [PlannerKind::Uniform, PlannerKind::Adaptive] {
            for partitions in PARTITIONS {
                let engine = Engine::builder(table.clone())
                    .partitions(partitions)
                    .threads(3)
                    .planner(default_planner)
                    .build()
                    .unwrap();
                let outcome = engine.execute(&batch).unwrap();
                prop_assert_eq!(outcome.queries.len(), specs.len());
                for (i, (spec, merged)) in specs.iter().zip(&outcome.queries).enumerate() {
                    prop_assert_eq!(
                        merged.hits.len(),
                        spec.k(),
                        "spec {} must get its own k", i
                    );
                    let reference = engine.sequential_reference_spec(spec).unwrap();
                    let context = format!(
                        "spec {i} rule {} k {} partitions {partitions} default {default_planner:?}",
                        spec.rule_override().unwrap().name(),
                        spec.k(),
                    );
                    assert_rank_correct(&merged.hits, &reference, &context);
                }
            }
        }
    }

    /// Heterogeneous batches answer identically to asking each spec alone:
    /// batching is an amortization, never a semantic change.
    #[test]
    fn batched_specs_match_solo_executions(
        (vectors, seed) in duplicated_collection(),
    ) {
        let table = Arc::new(DecomposedTable::from_vectors("solo", &vectors).unwrap());
        let n = table.rows();
        let rules = mixed_rules();
        let specs: Vec<QuerySpec> = (0..5)
            .map(|i| {
                let qi = (seed as usize + i * 11) % vectors.len();
                QuerySpec::new(vectors[qi].clone(), 1 + (seed as usize + i) % 5.min(n))
                    .rule(rules[(i + 1) % rules.len()].clone())
            })
            .collect();
        let engine = Engine::builder(table).partitions(3).threads(2).build().unwrap();
        let outcome = engine.execute(&RequestBatch::from_specs(specs.clone())).unwrap();
        for (spec, merged) in specs.iter().zip(&outcome.queries) {
            let solo = engine.search_spec(spec).unwrap();
            prop_assert_eq!(&merged.hits, &solo.hits);
            prop_assert_eq!(merged.segments.len(), solo.segments.len());
        }
    }
}

/// The engine is exactly what a service layer needs: `Send + Sync +
/// 'static` (compile-time assertion), clonable, and its clones share one
/// table allocation.
#[test]
fn engine_satisfies_the_service_bounds() {
    fn assert_send_sync_static<T: Send + Sync + 'static>() {}
    assert_send_sync_static::<Engine>();
    assert_send_sync_static::<Server>();

    let table = Arc::new(
        DecomposedTable::from_vectors(
            "bounds",
            &(0..60).map(|i| vec![i as f64 / 60.0, 1.0 - i as f64 / 60.0]).collect::<Vec<_>>(),
        )
        .unwrap(),
    );
    let engine = Engine::builder(table.clone()).partitions(2).threads(1).build().unwrap();
    // the engine shares the caller's Arc rather than deep-copying the table
    assert!(std::ptr::eq(engine.table(), &*table));
    let clone = engine.clone();
    assert!(std::ptr::eq(clone.table(), engine.table()));
}

/// Server smoke test: many submitter threads, mixed specs, every answer
/// routed back to the thread that asked for it.
#[test]
fn concurrent_submitters_get_their_own_answers() {
    let vectors: Vec<Vec<f64>> = (0..300)
        .map(|r| {
            let mut v: Vec<f64> =
                (0..DIMS).map(|d| ((r * 29 + d * 13) % 83) as f64 + 1.0).collect();
            let total: f64 = v.iter().sum();
            v.iter_mut().for_each(|x| *x /= total);
            v
        })
        .collect();
    let table = DecomposedTable::from_vectors("server", &vectors).unwrap();
    let engine = Engine::builder(table).partitions(4).threads(2).build().unwrap();
    let server = Server::builder(engine.clone()).max_batch(16).build().unwrap();
    let rules = mixed_rules();

    let n_threads = 8;
    let per_thread = 6;
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let server = &server;
            let engine = &engine;
            let rules = &rules;
            let vectors = &vectors;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let qi = (t * 37 + i * 11) % vectors.len();
                    let spec = QuerySpec::new(vectors[qi].clone(), 1 + (t + i) % 7)
                        .rule(rules[(t + i) % rules.len()].clone());
                    let answer = server.submit(spec.clone()).unwrap().wait().unwrap();
                    let direct = engine.search_spec(&spec).unwrap();
                    assert_eq!(
                        answer.hits, direct.hits,
                        "thread {t} request {i}: answer routed to the wrong requester"
                    );
                }
            });
        }
    });
    assert_eq!(server.queries_served(), n_threads * per_thread);
    assert!(server.batches_executed() <= n_threads * per_thread);
}
