//! The open query surface's contract (PR 9):
//!
//! * **Filtered k-NN is exact** — for every rule (the four unweighted plus
//!   both weighted families), any partition count and either planner, a
//!   predicate-filtered search returns exactly the brute-force
//!   filter-then-scan answer: the filter composes with tombstones, with
//!   the quantized first pass, and with zone-map segment skipping, and an
//!   adaptive skip never drops an eligible row.
//! * **Multi-feature requests match the sequential searcher** — the
//!   partitioned engine's synchronized scan is bit-identical to
//!   [`MultiFeatureSearcher`] for every aggregate, and filtered
//!   multi-feature answers match an independent per-row oracle.
//! * **Bad requests die at admission** — domain-mismatched or empty
//!   filters ([`BondError::InvalidFilter`]), per-feature dimension
//!   mismatches ([`BondError::FeatureDimensionMismatch`]) and aggregate
//!   arity errors are rejected before any segment work starts.
//! * **The filter metrics account honestly** — eligible rows are counted
//!   once per scanned segment, filter-empty segments are skipped and
//!   counted, and multi-feature scans tick their own counter.

use bond::{BondError, FeatureMetricKind, FeatureQuery, MultiFeatureSearcher};
use bond_exec::{
    AggregateSpec, Engine, FeatureSpec, KnnProgram, MultiFeatureSpec, PlannerKind, QuerySpec,
    RequestBatch, RuleKind, ScanMode,
};
use bond_metrics::{DecomposableMetric, SquaredEuclidean};
use bond_obs::names;
use proptest::prelude::*;
use std::sync::Arc;
use vdstore::topk::Scored;
use vdstore::{Bitmap, DecomposedTable, RowId, TopKLargest};

const DIMS: usize = 8;
const PARTITIONS: [usize; 4] = [1, 2, 3, 7];

/// All six pruning-rule families.
fn all_rules() -> Vec<RuleKind> {
    let mut rules: Vec<RuleKind> = RuleKind::ALL.to_vec();
    rules.push(RuleKind::weighted_histogram(vec![1.0, 2.0, 0.0, 1.0, 4.0, 1.0, 1.0, 0.5]).unwrap());
    rules.push(RuleKind::weighted_euclidean(vec![0.5, 1.0, 3.0, 0.0, 1.0, 1.0, 2.0, 1.0]).unwrap());
    rules
}

/// Random normalized histograms plus a 64-bit eligibility mask and a query
/// index. The mask is forced non-empty over the generated rows.
fn collection_with_filter() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<bool>, usize)> {
    (
        proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, DIMS), 16..48),
        proptest::collection::vec(proptest::bool::ANY, 64),
        0usize..48,
    )
        .prop_map(|(mut vectors, mut mask, qi)| {
            for v in &mut vectors {
                let total: f64 = v.iter().sum();
                if total <= 0.0 {
                    v[0] = 1.0;
                } else {
                    v.iter_mut().for_each(|x| *x /= total);
                }
            }
            let n = vectors.len();
            mask.truncate(n);
            if !mask.iter().any(|&m| m) {
                mask[n / 2] = true;
            }
            (vectors, mask, qi)
        })
}

fn bitmap_from_mask(mask: &[bool]) -> Bitmap {
    let rows: Vec<RowId> =
        mask.iter().enumerate().filter(|(_, &m)| m).map(|(r, _)| r as RowId).collect();
    Bitmap::from_rows(mask.len(), &rows)
}

/// Brute-force filter-then-scan reference: the engine's own sequential
/// searcher ranks *every* live row exactly (same scoring, same `(score,
/// row)` total order), then the predicate keeps the eligible prefix.
fn filtered_reference(engine: &Engine, query: &[f64], mask: &[bool], k: usize) -> Vec<Scored> {
    let live = engine.segment_stats().iter().map(|s| s.live_rows).sum::<usize>();
    let all = engine.sequential_reference(query, live).unwrap();
    all.into_iter().filter(|h| mask[h.row as usize]).take(k).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn filtered_answers_match_brute_force_for_every_rule(
        (vectors, mask, qi) in collection_with_filter(),
    ) {
        let table = Arc::new(DecomposedTable::from_vectors("filtered", &vectors).unwrap());
        let query = vectors[qi % vectors.len()].clone();
        let eligible = mask.iter().filter(|&&m| m).count();
        let filter = Arc::new(bitmap_from_mask(&mask));
        for rule in all_rules() {
            for partitions in PARTITIONS {
                // Adaptive covers the zone-map skip path: a skipped segment
                // must never have held an eligible answer row.
                for planner in [PlannerKind::Uniform, PlannerKind::Adaptive] {
                    let engine = Engine::builder(table.clone())
                        .partitions(partitions)
                        .threads(2)
                        .rule(rule.clone())
                        .planner(planner)
                        .build()
                        .unwrap();
                    for k in [1, 3.min(eligible), eligible] {
                        let spec = QuerySpec::new(query.clone(), k)
                            .filter_shared(filter.clone());
                        let outcome = engine.search_spec(&spec).unwrap();
                        let expected = filtered_reference(&engine, &query, &mask, k);
                        let ctx = format!(
                            "rule {} partitions {partitions} planner {planner:?} k {k} \
                             eligible {eligible}",
                            rule.name()
                        );
                        if planner == PlannerKind::Uniform {
                            // Same dimension order as the reference scan:
                            // the answer is bit-identical.
                            assert_eq!(outcome.hits, expected, "{ctx}");
                        } else {
                            // Adaptive reorders dimensions per segment, so
                            // exact scores can drift by an ULP — rows and
                            // ranks must still match the brute force.
                            assert_eq!(outcome.hits.len(), expected.len(), "{ctx}");
                            for (got, want) in outcome.hits.iter().zip(&expected) {
                                assert_eq!(got.row, want.row, "{ctx}");
                                assert!((got.score - want.score).abs() < 1e-9, "{ctx}");
                            }
                        }
                        assert!(outcome.hits.iter().all(|h| mask[h.row as usize]));
                    }
                }
            }
        }
    }

    #[test]
    fn engine_multifeature_is_bit_identical_to_the_sequential_searcher(
        (vectors, mask, qi) in collection_with_filter(),
    ) {
        let color = DecomposedTable::from_vectors("color", &vectors).unwrap();
        // A second feature collection over the same rows: reversed dims.
        let reversed: Vec<Vec<f64>> =
            vectors.iter().map(|v| v.iter().rev().copied().collect()).collect();
        let texture = Arc::new(DecomposedTable::from_vectors("texture", &reversed).unwrap());
        let query = vectors[qi % vectors.len()].clone();
        let tquery: Vec<f64> = query.iter().rev().copied().collect();
        let n = vectors.len();
        let k = 4.min(n);
        let _ = mask; // the filtered variant is covered separately below

        for aggregate in [
            AggregateSpec::WeightedAverage(vec![0.6, 0.4]),
            AggregateSpec::FuzzyMin,
            AggregateSpec::FuzzyMax,
        ] {
            let spec = QuerySpec::multi_feature(
                MultiFeatureSpec::new(
                    vec![
                        FeatureSpec::new(query.clone(), FeatureMetricKind::HistogramIntersection),
                        FeatureSpec::external(
                            tquery.clone(),
                            FeatureMetricKind::Euclidean,
                            texture.clone(),
                        ),
                    ],
                    aggregate.clone(),
                ),
                k,
            );
            let sequential = MultiFeatureSearcher::new(vec![&color, &texture]).unwrap();
            let feature_queries = vec![
                FeatureQuery {
                    query: query.clone(),
                    metric: FeatureMetricKind::HistogramIntersection,
                },
                FeatureQuery { query: tquery.clone(), metric: FeatureMetricKind::Euclidean },
            ];
            for partitions in PARTITIONS {
                let engine = Engine::builder(color.clone())
                    .partitions(partitions)
                    .threads(2)
                    .build()
                    .unwrap();
                let outcome = engine.search_spec(&spec).unwrap();
                let expected = sequential
                    .search(
                        &feature_queries,
                        aggregate.build().unwrap().as_ref(),
                        k,
                        engine.params().schedule,
                    )
                    .unwrap();
                assert_eq!(
                    outcome.hits, expected.hits,
                    "aggregate {} partitions {partitions}",
                    aggregate.label()
                );
            }
        }
    }

    #[test]
    fn filtered_multifeature_matches_an_independent_oracle(
        (vectors, mask, qi) in collection_with_filter(),
    ) {
        let color = DecomposedTable::from_vectors("color", &vectors).unwrap();
        let reversed: Vec<Vec<f64>> =
            vectors.iter().map(|v| v.iter().rev().copied().collect()).collect();
        let texture = Arc::new(DecomposedTable::from_vectors("texture", &reversed).unwrap());
        let query = vectors[qi % vectors.len()].clone();
        let tquery: Vec<f64> = query.iter().rev().copied().collect();
        let eligible = mask.iter().filter(|&&m| m).count();
        let k = 3.min(eligible);
        let weights = [0.7, 0.3];

        // Independent oracle: aggregate the per-feature similarities row by
        // row — no BOND machinery involved.
        let mut heap = TopKLargest::new(k);
        for (r, keep) in mask.iter().enumerate() {
            if !keep {
                continue;
            }
            let hi: f64 =
                vectors[r].iter().zip(&query).map(|(a, b)| a.min(*b)).sum();
            let d = SquaredEuclidean.score(&reversed[r], &tquery);
            let eu = SquaredEuclidean::similarity_from_distance(d, DIMS);
            heap.push(r as RowId, weights[0] * hi + weights[1] * eu);
        }
        let expected = heap.into_sorted_vec();

        let spec = QuerySpec::multi_feature(
            MultiFeatureSpec::new(
                vec![
                    FeatureSpec::new(query.clone(), FeatureMetricKind::HistogramIntersection),
                    FeatureSpec::external(tquery, FeatureMetricKind::Euclidean, texture.clone()),
                ],
                AggregateSpec::WeightedAverage(weights.to_vec()),
            ),
            k,
        )
        .filter(bitmap_from_mask(&mask));
        for partitions in PARTITIONS {
            let engine =
                Engine::builder(color.clone()).partitions(partitions).threads(2).build().unwrap();
            let outcome = engine.search_spec(&spec).unwrap();
            assert_eq!(outcome.hits.len(), expected.len(), "partitions {partitions}");
            for (i, (got, want)) in outcome.hits.iter().zip(&expected).enumerate() {
                assert_eq!(got.row, want.row, "partitions {partitions} rank {i}");
                assert!(
                    (got.score - want.score).abs() <= 1e-9 * want.score.abs().max(1.0),
                    "partitions {partitions} rank {i}: {} vs {}",
                    got.score,
                    want.score
                );
            }
            assert!(outcome.hits.iter().all(|h| mask[h.row as usize]));
        }
    }
}

/// Deterministic, mildly skewed synthetic histograms.
fn table(rows: usize, dims: usize) -> DecomposedTable {
    let vectors: Vec<Vec<f64>> = (0..rows)
        .map(|r| {
            let mut v: Vec<f64> =
                (0..dims).map(|d| ((r * 31 + d * 17) % 97) as f64 + 1.0).collect();
            let total: f64 = v.iter().sum();
            v.iter_mut().for_each(|x| *x /= total);
            v
        })
        .collect();
    DecomposedTable::from_vectors("surface", &vectors).unwrap()
}

#[test]
fn filters_compose_with_tombstones() {
    let mut t = table(200, DIMS);
    let query = t.row(60).unwrap();
    // Tombstone the filter's best match and a few of its neighbours.
    for row in [60, 61, 62] {
        t.delete(row).unwrap();
    }
    let mask: Vec<bool> = (0..200).map(|r| r % 2 == 0).collect();
    let engine = Engine::builder(t).partitions(4).threads(2).build().unwrap();
    let spec = QuerySpec::new(query.clone(), 7).filter(bitmap_from_mask(&mask));
    let outcome = engine.search_spec(&spec).unwrap();
    assert_eq!(outcome.hits.len(), 7);
    assert!(outcome.hits.iter().all(|h| mask[h.row as usize] && (h.row < 60 || h.row > 62)));
    let expected = filtered_reference(&engine, &query, &mask, 7);
    assert_eq!(outcome.hits, expected);
}

#[test]
fn predicate_filters_compose_with_the_quantized_first_pass() {
    let t = table(400, DIMS);
    let mask: Vec<bool> = (0..400).map(|r| r % 3 != 1).collect();
    let filter = Arc::new(bitmap_from_mask(&mask));
    let engine = Engine::builder(t.clone()).partitions(4).threads(2).build().unwrap();
    for rule in all_rules() {
        for q in [t.row(0).unwrap(), t.row(133).unwrap()] {
            let exact =
                QuerySpec::new(q.clone(), 10).rule(rule.clone()).filter_shared(filter.clone());
            let quantized = exact.clone().scan_mode(ScanMode::QuantizedFilter);
            let expected = engine.search_spec(&exact).unwrap();
            let got = engine.search_spec(&quantized).unwrap();
            assert_eq!(got.hits, expected.hits, "rule {}", rule.name());
            assert!(got.quant_filter_cells() > 0, "code sweep actually ran");
            assert!(got.hits.iter().all(|h| mask[h.row as usize]));
        }
    }
}

#[test]
fn bad_filters_and_features_are_rejected_at_admission() {
    let mut t = table(100, DIMS);
    t.delete(10).unwrap();
    let q = t.row(0).unwrap();
    let engine = Engine::builder(t).partitions(2).threads(1).build().unwrap();

    // Filter domain must equal the table's row space.
    let short = QuerySpec::new(q.clone(), 1).filter(Bitmap::new(99));
    assert!(matches!(engine.search_spec(&short), Err(BondError::InvalidFilter(_))));
    // An empty filter can never answer.
    let empty = QuerySpec::new(q.clone(), 1).filter(Bitmap::new(100));
    assert!(matches!(engine.search_spec(&empty), Err(BondError::InvalidFilter(_))));
    // A filter naming only tombstoned rows is empty in effect.
    let dead = QuerySpec::new(q.clone(), 1).filter(Bitmap::from_rows(100, &[10]));
    assert!(matches!(engine.search_spec(&dead), Err(BondError::InvalidFilter(_))));
    // k is validated against the *eligible* rows, not the table.
    let tight = QuerySpec::new(q.clone(), 3).filter(Bitmap::from_rows(100, &[1, 2]));
    assert!(matches!(engine.search_spec(&tight), Err(BondError::InvalidK { k: 3, rows: 2 })));
    // validate_against reports the same decision without executing.
    assert!(matches!(
        QuerySpec::new(q.clone(), 3)
            .filter(Bitmap::from_rows(100, &[1, 2]))
            .validate_against(&engine),
        Err(BondError::InvalidK { k: 3, rows: 2 })
    ));

    // Per-feature dimensions are checked feature by feature.
    let mf = QuerySpec::multi_feature(
        MultiFeatureSpec::new(
            vec![
                FeatureSpec::new(q.clone(), FeatureMetricKind::HistogramIntersection),
                FeatureSpec::new(vec![0.5; DIMS + 1], FeatureMetricKind::Euclidean),
            ],
            AggregateSpec::WeightedAverage(vec![0.5, 0.5]),
        ),
        5,
    );
    assert!(matches!(
        engine.search_spec(&mf),
        Err(BondError::FeatureDimensionMismatch { feature: 1, expected: DIMS, actual: 9 })
    ));
    // Aggregate arity must match the feature count.
    let arity = QuerySpec::multi_feature(
        MultiFeatureSpec::new(
            vec![FeatureSpec::new(q.clone(), FeatureMetricKind::Euclidean)],
            AggregateSpec::WeightedAverage(vec![0.5, 0.5]),
        ),
        5,
    );
    assert!(matches!(engine.search_spec(&arity), Err(BondError::InvalidParams(_))));
    // Multi-feature requests cannot override the single-feature rule.
    let ruled = QuerySpec::multi_feature(
        MultiFeatureSpec::new(
            vec![FeatureSpec::new(q.clone(), FeatureMetricKind::Euclidean)],
            AggregateSpec::FuzzyMin,
        ),
        5,
    )
    .rule(RuleKind::EuclideanEq);
    assert!(matches!(engine.search_spec(&ruled), Err(BondError::InvalidParams(_))));

    // One bad spec fails the whole batch before any work starts.
    let batch = RequestBatch::from_specs(vec![
        QuerySpec::new(q.clone(), 1),
        QuerySpec::new(q, 1).filter(Bitmap::new(100)),
    ]);
    assert!(engine.execute(&batch).is_err());
    assert_eq!(engine.metrics().counter_value(names::ENGINE_BATCH_COUNT), Some(0));
}

#[test]
fn filter_metrics_account_eligible_rows_and_empty_segments() {
    let t = table(100, DIMS);
    let q = t.row(5).unwrap();
    let engine = Engine::builder(t).partitions(4).threads(2).build().unwrap();
    // Rows 0..25 live entirely in the first of four 25-row segments.
    let spec =
        QuerySpec::new(q.clone(), 3).filter(Bitmap::from_rows(100, &(0..25).collect::<Vec<_>>()));
    let outcome = engine.search_spec(&spec).unwrap();
    assert!(outcome.hits.iter().all(|h| h.row < 25));
    let metrics = engine.metrics();
    assert_eq!(metrics.counter_value(names::ENGINE_FILTER_ELIGIBLE_ROWS), Some(25));
    assert_eq!(metrics.counter_value(names::ENGINE_FILTER_SEGMENTS_EMPTY), Some(3));
    assert_eq!(outcome.segments_skipped(), 3, "filter-empty segments are skipped outright");

    // A multi-feature request ticks its own per-segment counter.
    let mf = QuerySpec::multi_feature(
        MultiFeatureSpec::new(
            vec![FeatureSpec::new(q, FeatureMetricKind::HistogramIntersection)],
            AggregateSpec::FuzzyMin,
        ),
        3,
    );
    engine.search_spec(&mf).unwrap();
    assert_eq!(metrics.counter_value(names::ENGINE_MULTIFEATURE_SEARCHES), Some(4));
}

#[test]
fn relational_programs_execute_on_the_engine() {
    let t = table(150, DIMS);
    let query = t.row(9).unwrap();
    let engine = Engine::builder(t.clone()).partitions(3).threads(2).build().unwrap();
    // No selects: the program is the pure MIL formulation on the engine.
    let run =
        KnnProgram::knn(query.clone(), 5).rule(RuleKind::HistogramHq).execute(&engine).unwrap();
    let mil = bond_relalg::run_bond_hq(&t, &query, 5).unwrap();
    assert_eq!(run.outcome.hits, mil.hits);
    // With selects: pushdown equals the filter bitmap path exactly.
    let lo = 1.0 / 97.0;
    let hi = 30.0 / 97.0;
    let pushed = KnnProgram::knn(query.clone(), 2).select(0, lo, hi).execute(&engine).unwrap();
    let mask: Vec<bool> = (0..150).map(|r| (lo..=hi).contains(&t.row(r).unwrap()[0])).collect();
    assert_eq!(pushed.eligible_rows, mask.iter().filter(|&&m| m).count());
    let direct =
        engine.search_spec(&QuerySpec::new(query, 2).filter(bitmap_from_mask(&mask))).unwrap();
    assert_eq!(pushed.outcome.hits, direct.hits);
}
