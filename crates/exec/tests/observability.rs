//! End-to-end observability invariants: EXPLAIN renders exactly the plan
//! execution runs, ANALYZE's scanned-cell accounting is the summed
//! [`bond::PruneTrace`] work counters, disabled tracing is bit-invisible
//! to query results, the warmed feedback planner's cost estimates stay
//! loosely calibrated, and a warmed run populates the metrics registry.

use std::sync::Arc;

use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, PlannerKind, QuerySpec, RequestBatch, RuleKind, ScanMode};
use vdstore::DecomposedTable;

const DIMS: usize = 8;
const PARTITIONS: [usize; 4] = [1, 2, 3, 7];

/// Deterministic normalized histograms — skewed enough that plans differ
/// across segments, duplicated across no clusters (worst case for
/// skipping, best case for exercising every planner path).
fn table(rows: usize, dims: usize) -> DecomposedTable {
    let vectors: Vec<Vec<f64>> = (0..rows)
        .map(|r| {
            let mut v: Vec<f64> =
                (0..dims).map(|d| ((r * 13 + d * 29) % 83) as f64 + 1.0).collect();
            let total: f64 = v.iter().sum();
            v.iter_mut().for_each(|x| *x /= total);
            v
        })
        .collect();
    DecomposedTable::from_vectors("obs", &vectors).unwrap()
}

/// A cluster-major clustered table where warmed feedback planning skips
/// whole segments — the same shape `bench_feedback` runs on.
fn clustered_table(rows: usize) -> Arc<DecomposedTable> {
    Arc::new(
        ClusteredConfig { clusters: 16, ..ClusteredConfig::small(rows, 16, 0.0) }
            .with_cluster_major(true)
            .with_seed(7)
            .generate(),
    )
}

/// For every planner × partition count, the plan EXPLAIN renders must be
/// the plan execution runs (`plans_match`), and ANALYZE's per-segment and
/// total scanned-cell counts must equal the executed trace's work
/// counters exactly.
#[test]
fn explain_matches_execution_for_every_planner_and_partitioning() {
    let table = Arc::new(table(210, DIMS));
    let queries: Vec<Vec<f64>> = (0u32..3).map(|i| table.row(i * 67).unwrap()).collect();
    for planner in [PlannerKind::Uniform, PlannerKind::Adaptive, PlannerKind::Feedback] {
        for partitions in PARTITIONS {
            let engine = Engine::builder(table.clone())
                .partitions(partitions)
                .threads(2)
                .rule(RuleKind::EuclideanEv)
                .planner(planner)
                .build()
                .unwrap();
            if planner == PlannerKind::Feedback {
                // exercise the warm derivation path too, not just cold
                let warming = RequestBatch::from_queries(
                    (0u32..40)
                        .map(|i| table.row((i * 11) % table.rows() as u32).unwrap())
                        .collect(),
                    5,
                );
                engine.execute(&warming).unwrap();
            }
            for query in &queries {
                let spec = QuerySpec::new(query.clone(), 5);
                // explain immediately before executing: the feedback
                // snapshot both read is the same
                let explain = engine.explain(&spec).unwrap();
                let outcome = engine.search_spec(&spec).unwrap();
                let analysis = outcome.analyze(&explain);

                let context = format!("planner {planner:?} partitions {partitions}");
                assert!(analysis.plans_match(), "{context}: executed plan != rendered plan");
                assert_eq!(
                    analysis.scanned_cells(),
                    outcome.contributions_evaluated(),
                    "{context}: ANALYZE total diverges from trace counters"
                );
                assert_eq!(analysis.segments.len(), outcome.segments.len());
                for (sa, run) in analysis.segments.iter().zip(&outcome.segments) {
                    assert_eq!(
                        sa.scanned_cells, run.trace.contributions_evaluated,
                        "{context}: segment {} scanned cells diverge",
                        sa.segment
                    );
                    assert_eq!(sa.skipped, run.trace.segment_skipped);
                    assert_eq!(sa.rule, run.trace.rule);
                    assert_eq!(sa.rule, Some("Ev"), "{context}: rule tag lost");
                }
            }
        }
    }
}

/// Tracing must be invisible to results: the same engine configuration
/// run with the span subscriber disabled and enabled returns
/// bit-identical scores, identical rows and identical work counters.
#[test]
fn disabled_tracing_is_bit_identical_to_enabled() {
    let table = Arc::new(table(300, DIMS));
    let batch =
        RequestBatch::from_queries((0u32..6).map(|i| table.row(i * 41).unwrap()).collect(), 7);
    let run = || {
        let engine = Engine::builder(table.clone())
            .partitions(3)
            .threads(1) // deterministic κ publication order ⇒ identical work counters
            .planner(PlannerKind::Adaptive)
            .build()
            .unwrap();
        engine.execute(&batch).unwrap()
    };

    bond_obs::span::set_enabled(false);
    bond_obs::span::take_spans(); // drain anything earlier tests left
    let quiet = run();
    assert!(bond_obs::span::take_spans().is_empty(), "disabled tracing must record nothing");

    bond_obs::span::set_enabled(true);
    let traced = run();
    let spans = bond_obs::span::take_spans();
    assert!(
        spans.iter().any(|s| s.stage == "engine.scan"),
        "enabled tracing must record scan spans"
    );
    bond_obs::span::set_enabled(false);

    assert_eq!(quiet.queries.len(), traced.queries.len());
    for (a, b) in quiet.queries.iter().zip(&traced.queries) {
        assert_eq!(a.hits.len(), b.hits.len());
        for (x, y) in a.hits.iter().zip(&b.hits) {
            assert_eq!(x.row, y.row);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "score bits diverged");
        }
        assert_eq!(a.contributions_evaluated(), b.contributions_evaluated());
    }
}

/// On clustered data, a warmed feedback planner's cost estimate must land
/// within a loose constant factor of the cells actually scanned, and the
/// engine must have folded its per-query calibration error into the
/// `planner.cost.abs_rel_error` histogram.
#[test]
fn warmed_cost_estimates_are_loosely_calibrated() {
    let table = clustered_table(4_000);
    let engine = Engine::builder(table.clone())
        .partitions(8)
        .threads(1)
        .rule(RuleKind::EuclideanEv)
        .planner(PlannerKind::Feedback)
        .build()
        .unwrap();
    let warming = RequestBatch::from_queries(sample_queries(&table, 80, 99), 10);
    engine.execute(&warming).unwrap();
    assert!(engine.feedback_snapshot().total_searches() > 0, "warming folded nothing");

    let mut checked = 0;
    for query in sample_queries(&table, 6, 4321) {
        let spec = QuerySpec::new(query, 10);
        let explain = engine.explain(&spec).unwrap();
        let outcome = engine.search_spec(&spec).unwrap();
        let analysis = outcome.analyze(&explain);
        let scanned = analysis.scanned_cells().max(1) as f64;
        let estimated = analysis.estimated_cells().max(1.0);
        let factor = (estimated / scanned).max(scanned / estimated);
        assert!(
            factor <= 25.0,
            "warmed estimate off by {factor:.1}x: estimated {estimated:.0} vs scanned {scanned}"
        );
        checked += 1;
    }
    assert_eq!(checked, 6);

    let errors = engine
        .metrics()
        .histogram_snapshot("planner.cost.abs_rel_error")
        .expect("calibration histogram registered");
    assert!(errors.count > 0, "no calibration errors recorded");
}

/// The acceptance check from the issue: after warming a feedback-planned
/// engine on cluster-major data, the registry reports non-zero
/// `engine.segment.skipped` and `planner.feedback.warm_segments`, and the
/// rendered exports carry the numbers.
#[test]
fn warmed_feedback_run_populates_the_registry() {
    let table = clustered_table(4_000);
    let engine = Engine::builder(table.clone())
        .partitions(8)
        .threads(2)
        .rule(RuleKind::EuclideanEv)
        .planner(PlannerKind::Feedback)
        .build()
        .unwrap();
    let warming = RequestBatch::from_queries(sample_queries(&table, 100, 99), 10);
    engine.execute(&warming).unwrap();
    let eval = RequestBatch::from_queries(sample_queries(&table, 12, 4321), 10);
    engine.execute(&eval).unwrap();
    // one quantized-filter query feeds the filter-phase counters too
    let quant_query = sample_queries(&table, 1, 777).remove(0);
    engine
        .search_spec(&QuerySpec::new(quant_query, 10).scan_mode(ScanMode::QuantizedFilter))
        .unwrap();

    let metrics = engine.metrics();
    assert_eq!(metrics.counter_value("engine.query.count"), Some(113));
    assert_eq!(metrics.counter_value("engine.batch.count"), Some(3));
    assert!(
        metrics.counter_value("engine.segment.skipped").unwrap() > 0,
        "warmed clustered run must skip whole segments"
    );
    assert!(
        metrics.gauge_value("planner.feedback.warm_segments").unwrap() > 0,
        "warm-segment gauge never rose"
    );
    assert!(metrics.counter_value("engine.rule.Ev.searches").unwrap() > 0);
    assert!(
        metrics.counter_value("engine.quant.filter_cells").unwrap() > 0,
        "quantized query must count its code sweep"
    );
    assert!(
        metrics.histogram_snapshot("engine.quant.filter_selectivity").unwrap().count > 0,
        "quantized query must record its filter selectivity"
    );
    let latency = metrics.histogram_snapshot("engine.query.latency_us").unwrap();
    assert_eq!(latency.count, 113);

    let text = metrics.render_text();
    assert!(text.contains("engine_segment_skipped"), "text export missing skip counter");
    assert!(text.contains("engine_quant_filter_cells"), "text export missing filter counter");
    let json = metrics.render_json();
    assert!(json.contains("\"engine.segment.skipped\":"), "json export missing skip counter");
    assert!(json.contains("\"planner.feedback.warm_segments\":"));
    assert!(json.contains("\"engine.quant.filter_cells\":"));
}
