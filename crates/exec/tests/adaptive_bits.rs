//! Feedback-adaptive code bit-width, end to end: an engine serving
//! quantized-filter traffic on clustered data must observe its tight
//! per-segment filter selectivity, drop those segments to 4-bit codes
//! (`CostModel::FAST_CODE_BITS` — the register-resident LUT path), render
//! the pick in EXPLAIN/ANALYZE, persist the mixed widths, and through all
//! of it keep every answer bit-identical to the exact scan.

use bond::CostModel;
use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, EngineBuilder, PlannerKind, QuerySpec, RequestBatch, RuleKind, ScanMode};
use std::path::PathBuf;
use vdstore::StorageBackend;

const ROWS: usize = 2_000;
const DIMS: usize = 8;
const PARTITIONS: usize = 8;

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bond_exec_adaptive_bits_{tag}_{}", std::process::id()))
}

/// A warmed engine on cluster-major clustered data: each partition holds
/// few clusters, so the code filter is extremely selective there.
fn warmed_engine() -> Engine {
    let table = ClusteredConfig { clusters: 16, ..ClusteredConfig::small(ROWS, DIMS, 0.0) }
        .with_cluster_major(true)
        .generate();
    let queries = sample_queries(&table, 12, 97);
    let engine = Engine::builder(table)
        .partitions(PARTITIONS)
        .threads(2)
        .planner(PlannerKind::Feedback)
        .rule(RuleKind::EuclideanEv)
        .build()
        .unwrap();
    // well past CostModel::min_warm_searches per segment, all through the
    // quantized path so observed selectivity lands in the feedback store
    for _ in 0..2 {
        let warming: Vec<QuerySpec> = queries
            .iter()
            .map(|q| QuerySpec::new(q.clone(), 10).scan_mode(ScanMode::QuantizedFilter))
            .collect();
        engine.execute(&RequestBatch::from_specs(warming)).unwrap();
    }
    engine
}

#[test]
fn warmed_tight_segments_drop_to_four_bit_codes() {
    let engine = warmed_engine();
    let picks = engine.adaptive_code_bits();
    assert_eq!(picks.len(), PARTITIONS);
    assert!(picks
        .iter()
        .all(|&b| b == CostModel::FAST_CODE_BITS || b == CostModel::DEFAULT_CODE_BITS));
    assert!(
        picks.contains(&CostModel::FAST_CODE_BITS),
        "warm clustered segments must pick the 4-bit fast path, got {picks:?}"
    );

    // the built codes match the picks, segment by segment
    let codes = engine.ensure_adaptive_codes().unwrap();
    assert_eq!(codes.segment_bits(), picks.as_slice());
    // and the cache serves the same build back while feedback is stable
    assert!(std::sync::Arc::ptr_eq(&codes, &engine.ensure_adaptive_codes().unwrap()));

    // a cold engine on the same data stays uniformly at 8 bits
    let cold = Engine::builder(engine.table().clone())
        .partitions(PARTITIONS)
        .threads(1)
        .planner(PlannerKind::Feedback)
        .build()
        .unwrap();
    assert!(cold.adaptive_code_bits().iter().all(|&b| b == CostModel::DEFAULT_CODE_BITS));
}

#[test]
fn adaptive_widths_keep_answers_bit_identical_to_exact() {
    let engine = warmed_engine();
    assert!(
        engine.adaptive_code_bits().contains(&CostModel::FAST_CODE_BITS),
        "precondition: the adaptive pick must actually fire"
    );
    for q in sample_queries(engine.table(), 6, 4242) {
        let exact = engine.search_spec(&QuerySpec::new(q.clone(), 10)).unwrap();
        let filtered = engine
            .search_spec(&QuerySpec::new(q, 10).scan_mode(ScanMode::QuantizedFilter))
            .unwrap();
        assert_eq!(filtered.hits, exact.hits, "4-bit filter segments changed an answer");
        assert!(filtered.quant_filter_cells() > 0);
    }
}

#[test]
fn explain_and_analyze_render_the_per_segment_pick_and_kernel() {
    let engine = warmed_engine();
    let q = engine.table().row(42).unwrap();
    let spec = QuerySpec::new(q, 10).scan_mode(ScanMode::QuantizedFilter);

    let explain = engine.explain(&spec).unwrap();
    let picks = engine.adaptive_code_bits();
    for (seg, &want) in explain.segments.iter().zip(&picks) {
        assert_eq!(seg.code_bits, Some(want), "segment {}", seg.segment);
    }
    let rendered = explain.to_string();
    assert!(rendered.contains("kernel="), "{rendered}");
    assert!(rendered.contains(" bits=4"), "no 4-bit segment rendered:\n{rendered}");

    let outcome = engine.search_spec(&spec).unwrap();
    let analysis = outcome.analyze(&explain);
    let executed_fast = analysis
        .segments
        .iter()
        .filter(|s| s.filter_cells > 0)
        .any(|s| s.filter_bits == bond::CostModel::FAST_CODE_BITS);
    assert!(executed_fast, "no executed segment swept 4-bit codes");
    assert!(analysis.segments.iter().filter(|s| s.filter_cells > 0).all(|s| s.kernel.is_some()));
    let shown = analysis.to_string();
    assert!(shown.contains("bits="), "{shown}");
    assert!(shown.contains("kernel="), "{shown}");

    // exact plans carry no width column
    let exact = engine.explain(&QuerySpec::new(engine.table().row(0).unwrap(), 10)).unwrap();
    assert!(exact.segments.iter().all(|s| s.code_bits.is_none()));
}

#[test]
fn mixed_widths_persist_and_serve_reopened_engines() {
    let engine = warmed_engine();
    let picks = engine.adaptive_code_bits();
    assert!(picks.contains(&CostModel::FAST_CODE_BITS), "precondition: mixed widths");
    let path = temp_store("roundtrip");
    engine.persist(&path).unwrap();

    let queries = sample_queries(engine.table(), 4, 777);
    for backend in [StorageBackend::Heap, StorageBackend::Mapped] {
        let reopened = EngineBuilder::open_with(&path, backend)
            .unwrap()
            .threads(2)
            .rule(RuleKind::EuclideanEv)
            .scan_mode(ScanMode::QuantizedFilter)
            .build()
            .unwrap();
        // the footer's mixed-width codes seed the adaptive cache; the
        // reopened engine's quantized answers must stay bit-identical to
        // its own exact scan (scores across *engines* may differ in the
        // last ulp — plan-order summation — so rows are compared there)
        for q in &queries {
            let exact = reopened
                .search_spec(&QuerySpec::new(q.clone(), 10).scan_mode(ScanMode::Exact))
                .unwrap();
            let got = reopened.search_spec(&QuerySpec::new(q.clone(), 10)).unwrap();
            assert_eq!(got.hits, exact.hits, "backend {backend:?}");
            let original: Vec<u32> = engine
                .search_spec(&QuerySpec::new(q.clone(), 10))
                .unwrap()
                .hits
                .iter()
                .map(|h| h.row)
                .collect();
            let reopened_rows: Vec<u32> = got.hits.iter().map(|h| h.row).collect();
            assert_eq!(reopened_rows, original, "backend {backend:?}");
        }
    }
    std::fs::remove_file(&path).unwrap();
}
