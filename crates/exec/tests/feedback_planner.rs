//! The feedback planner's contract: learned plans may change *work*, never
//! *answers*. `PlannerKind::Feedback` must return the sequential
//! reference's k-NN set and ranks for every rule, any partition count and
//! any k — both cold (where it falls back to the adaptive derivation) and
//! after warming on a hundred queries (where orders and warmups have moved
//! to the learned values). On clustered, cluster-major data — the regime
//! where a-priori moments mislead — the warmed planner must also do
//! measurably *less* scanned-row work than the a-priori adaptive planner.

use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, PlannerKind, QuerySpec, RequestBatch, RuleKind};
use proptest::prelude::*;
use std::sync::Arc;
use vdstore::topk::Scored;
use vdstore::DecomposedTable;

const DIMS: usize = 8;
const PARTITIONS: [usize; 4] = [1, 2, 3, 7];
const WARMING_QUERIES: usize = 100;

/// Random normalized histograms, each duplicated once so the merge's
/// deterministic tie-breaking is exercised on every query.
fn duplicated_collection() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, DIMS), 15..40), 0usize..30)
        .prop_map(|(mut vectors, qi)| {
            for v in &mut vectors {
                let total: f64 = v.iter().sum();
                if total <= 0.0 {
                    v[0] = 1.0;
                } else {
                    for x in v.iter_mut() {
                        *x /= total;
                    }
                }
            }
            let dupes: Vec<Vec<f64>> = vectors.clone();
            vectors.extend(dupes);
            (vectors, qi)
        })
}

/// Same k-NN set *and ranks*; scores equal up to floating-point summation
/// order.
fn assert_rank_correct(feedback: &[Scored], reference: &[Scored], context: &str) {
    assert_eq!(feedback.len(), reference.len(), "{context}: hit counts differ");
    for (i, (a, r)) in feedback.iter().zip(reference).enumerate() {
        assert_eq!(a.row, r.row, "{context}: rank {i} row diverges");
        assert!(
            (a.score - r.score).abs() <= 1e-9 * r.score.abs().max(1.0),
            "{context}: rank {i} score {} vs reference {}",
            a.score,
            r.score
        );
    }
}

/// Runs `WARMING_QUERIES` feedback-planned queries drawn from the
/// collection itself, folding their traces into the engine's store.
fn warm(engine: &Engine, vectors: &[Vec<f64>], k: usize) {
    let specs: Vec<QuerySpec> = (0..WARMING_QUERIES)
        .map(|i| {
            QuerySpec::new(vectors[(i * 13) % vectors.len()].clone(), k)
                .planner(PlannerKind::Feedback)
        })
        .collect();
    engine.execute(&RequestBatch::from_specs(specs)).expect("warming batch executes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn feedback_plans_stay_rank_correct_cold_and_warm_for_every_rule(
        (vectors, qi) in duplicated_collection(),
    ) {
        let table = Arc::new(DecomposedTable::from_vectors("feedback", &vectors).unwrap());
        let query = vectors[qi % vectors.len()].clone();
        let n = table.rows();
        for rule in RuleKind::ALL {
            for partitions in PARTITIONS {
                let engine = Engine::builder(table.clone())
                    .partitions(partitions)
                    .threads(3)
                    .rule(rule.clone())
                    .planner(PlannerKind::Feedback)
                    .build()
                    .unwrap();
                prop_assert_eq!(engine.feedback_snapshot().total_searches(), 0);
                for k in [1, 10.min(n), n] {
                    // cold: the feedback planner falls back to the
                    // adaptive derivation and must already be rank-correct
                    let spec = QuerySpec::new(query.clone(), k);
                    let cold = engine.search_spec(&spec).unwrap();
                    let reference = engine.sequential_reference_spec(&spec).unwrap();
                    let context = format!(
                        "cold rule {} partitions {partitions} k {k} rows {n}",
                        rule.name()
                    );
                    assert_rank_correct(&cold.hits, &reference, &context);
                }
                // warm the store with 100 feedback queries …
                warm(&engine, &vectors, 5.min(n));
                prop_assert!(
                    engine.feedback_snapshot().total_searches()
                        + engine.feedback_snapshot().total_skips() > 0,
                    "warming must fold observations into the store"
                );
                // … and the learned plans must still be rank-correct
                for k in [1, 10.min(n), n] {
                    let spec = QuerySpec::new(query.clone(), k);
                    let warm_outcome = engine.search_spec(&spec).unwrap();
                    let reference = engine.sequential_reference_spec(&spec).unwrap();
                    let context = format!(
                        "warm rule {} partitions {partitions} k {k} rows {n}",
                        rule.name()
                    );
                    assert_rank_correct(&warm_outcome.hits, &reference, &context);
                }
            }
        }
    }

    #[test]
    fn mixed_planner_batches_answer_each_spec_on_its_own_terms(
        (vectors, _) in duplicated_collection(),
        k in 1usize..=5,
    ) {
        let table = DecomposedTable::from_vectors("mixed", &vectors).unwrap();
        let engine = Engine::builder(table).partitions(3).threads(2).build().unwrap();
        let queries: Vec<Vec<f64>> =
            vectors.iter().step_by(vectors.len().div_ceil(4).max(1)).cloned().collect();
        let specs: Vec<QuerySpec> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let planner = match i % 3 {
                    0 => PlannerKind::Uniform,
                    1 => PlannerKind::Adaptive,
                    _ => PlannerKind::Feedback,
                };
                QuerySpec::new(q.clone(), k).planner(planner)
            })
            .collect();
        let outcome = engine.execute(&RequestBatch::from_specs(specs.clone())).unwrap();
        for (spec, merged) in specs.iter().zip(&outcome.queries) {
            let reference = engine.sequential_reference_spec(spec).unwrap();
            assert_rank_correct(&merged.hits, &reference, "mixed-planner batch");
        }
    }
}

/// The clustered, cluster-major workload the ISSUE names: contiguous row
/// segments cover few clusters each, so observed prune behaviour is a
/// sharper signal than a-priori moments. A feedback engine warmed on 100
/// queries must scan strictly fewer `(candidate, dimension)` cells than
/// the a-priori adaptive planner on the same evaluation batch — while
/// every answer stays rank-correct.
#[test]
fn warmed_feedback_beats_adaptive_on_cluster_major_data() {
    let rows = 8_000;
    let dims = 16;
    let k = 10;
    let partitions = 8;
    let table = Arc::new(
        ClusteredConfig { clusters: 16, ..ClusteredConfig::small(rows, dims, 0.0) }
            .with_cluster_major(true)
            .generate(),
    );
    let eval_queries = sample_queries(&table, 12, 4321);
    let eval = RequestBatch::from_queries(eval_queries.clone(), k);

    let build = |planner: PlannerKind| {
        Engine::builder(table.clone())
            .partitions(partitions)
            .threads(1) // deterministic task order isolates plan quality
            .rule(RuleKind::EuclideanEv)
            .planner(planner)
            .build()
            .unwrap()
    };

    let adaptive = build(PlannerKind::Adaptive);
    let adaptive_outcome = adaptive.execute(&eval).unwrap();
    let adaptive_work: u64 =
        adaptive_outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();

    let feedback = build(PlannerKind::Feedback);
    let warming = RequestBatch::from_queries(sample_queries(&table, 100, 99), k);
    feedback.execute(&warming).unwrap();
    let snapshot = feedback.feedback_snapshot();
    assert!(snapshot.total_searches() > 0, "warming folded nothing");

    let feedback_outcome = feedback.execute(&eval).unwrap();
    let feedback_work: u64 =
        feedback_outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();

    assert!(
        feedback_work < adaptive_work,
        "warmed feedback must scan strictly less than a-priori adaptive: {feedback_work} vs \
         {adaptive_work}"
    );

    // work went down; answers did not change
    for (q, merged) in eval_queries.iter().zip(&feedback_outcome.queries) {
        let reference = feedback.sequential_reference(q, k).unwrap();
        assert_eq!(merged.hits.len(), reference.len());
        for (a, r) in merged.hits.iter().zip(&reference) {
            assert_eq!(a.row, r.row, "feedback planning changed an answer");
        }
    }
}

/// Warm estimates reflect what was observed: a segment the zone map keeps
/// skipping prices lower than it did cold, and uniform planning (which
/// never skips) prices at least as high as feedback planning.
#[test]
fn cost_estimates_learn_from_feedback() {
    let mut vectors = Vec::new();
    for i in 0..400 {
        vectors.push(vec![0.1 + (i % 10) as f64 * 1e-3; 8]);
    }
    for i in 0..400 {
        vectors.push(vec![0.9 - (i % 10) as f64 * 1e-3; 8]);
    }
    let table = Arc::new(DecomposedTable::from_vectors("cost_learn", &vectors).unwrap());
    let engine = Engine::builder(table.clone())
        .partitions(2)
        .threads(1)
        .rule(RuleKind::EuclideanEv)
        .planner(PlannerKind::Feedback)
        .build()
        .unwrap();

    let spec = QuerySpec::new(vectors[0].clone(), 5);
    let cold = engine.estimate_cost(&spec);
    assert!(cold > 0.0);

    // queries from cluster A keep skipping the far cluster-B segment
    let warming: Vec<QuerySpec> =
        (0..40).map(|i| QuerySpec::new(vectors[i * 7 % 400].clone(), 5)).collect();
    let outcome = engine.execute(&RequestBatch::from_specs(warming)).unwrap();
    assert!(outcome.queries.iter().map(|q| q.segments_skipped()).sum::<usize>() > 0);

    let warm = engine.estimate_cost(&spec);
    assert!(warm < cold, "observed skips and pruning must cheapen the estimate: {warm} vs {cold}");

    let uniform = engine.estimate_cost(&spec.clone().planner(PlannerKind::Uniform));
    assert!(uniform >= warm, "uniform planning never skips, so it cannot price lower");

    // the snapshot exposes the same signals for introspection
    let snapshot = engine.feedback_snapshot();
    assert_eq!(snapshot.segments.len(), engine.partitions());
    assert!(snapshot.segments[1].skips > 0, "the far segment accumulated skip hits");
}
