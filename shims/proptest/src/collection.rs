//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates a `Vec` whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % (span + 1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_size_bounds() {
        let mut rng = TestRng::for_test("collection::respects_size_bounds");
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0.0f64..1.0, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn nests() {
        let mut rng = TestRng::for_test("collection::nests");
        let s = vec(vec(0u8..=1, 3usize), 1..=2);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() <= 2);
        assert!(v.iter().all(|inner| inner.len() == 3));
    }
}
