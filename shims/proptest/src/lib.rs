//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this shim reimplements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and boxing,
//! * range strategies for integers and floats,
//! * [`collection::vec`] with exact or ranged sizes,
//! * [`bool::ANY`], [`strategy::Just`] and [`prop_oneof!`],
//! * the [`proptest!`] macro with `#![proptest_config(..)]` support, and
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Inputs are generated from a deterministic per-test RNG (seeded by the
//! test's name), so failures are reproducible run-over-run. There is no
//! shrinking: a failing case panics with the generated inputs printed via
//! the assertion message instead.

#![warn(missing_docs)]

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports property tests expect: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
///
/// The shim has no case-rejection budget; the case simply counts as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($arg:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body for `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    // One closure call per case; like upstream proptest the
                    // body may `return Ok(())` (or be skipped by
                    // `prop_assume!`) to end the case early.
                    let outcome = (|rng: &mut $crate::test_runner::TestRng|
                        -> ::std::result::Result<(), ::std::string::String> {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })(&mut rng);
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed: {}", stringify!($name), message);
                    }
                }
            }
        )*
    };
}
