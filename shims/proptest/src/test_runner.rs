//! Test configuration and the deterministic test RNG.

/// Mirrors `proptest::test_runner::Config` for the field the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test random generator (SplitMix64 seeded by the test's
/// fully qualified name), so every run of a property exercises the same
/// inputs and failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name gives a stable, well-spread seed.
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(TestRng::for_test("x").next_u64(), c.next_u64());
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(64).cases, 64);
    }
}
