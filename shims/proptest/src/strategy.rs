//! The [`Strategy`] trait and the primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// a strategy is simply a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms. `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}
impl_tuple_strategy!((A / 0)(A / 0, B / 1)(A / 0, B / 1, C / 2)(A / 0, B / 1, C / 2, D / 3)(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4
)(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5));

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*
    };
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*
    };
}
impl_float_ranges!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_map() {
        let mut rng = TestRng::for_test("strategy::ranges_and_map");
        for _ in 0..1000 {
            let x = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&y));
            let z = (1u8..=4).prop_map(|v| v * 2).generate(&mut rng);
            assert!([2, 4, 6, 8].contains(&z));
        }
    }

    #[test]
    fn just_and_union() {
        let mut rng = TestRng::for_test("strategy::just_and_union");
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
