//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *small, deterministic* subset of the `rand` 0.8 API
//! it actually uses: [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is SplitMix64 — statistically solid
//! for synthetic-workload generation and fully reproducible across runs,
//! which is all the test-suite and the experiment harness need. It is *not*
//! a cryptographic generator and the exact stream differs from upstream
//! `StdRng`.

#![warn(missing_docs)]

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled from the "standard" distribution of `rng.gen()`:
/// uniform on `[0, 1)` for floats, uniform over all values for integers and
/// `bool`.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl SampleStandard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `rng.gen_range(..)` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*
    };
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let u: $t = SampleStandard::sample(rng);
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample from empty range");
                    let u: $t = SampleStandard::sample(rng);
                    lo + u * (hi - lo)
                }
            }
        )*
    };
}
impl_range_float!(f32, f64);

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of its type.
    #[inline]
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from the given range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 1usize..100 {
            let x = rng.gen_range(0..i);
            assert!(x < i);
            let y = rng.gen_range(0..=i);
            assert!(y <= i);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
