//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A fast deterministic generator (SplitMix64).
///
/// Stands in for `rand::rngs::StdRng`; the stream differs from upstream but
/// has the same reproducibility guarantees given a fixed seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix the seed so that small consecutive seeds (0, 1, 2, …)
        // produce unrelated streams from the very first draw.
        let mut rng = StdRng { state: state ^ 0x5851_F42D_4C95_7F2D };
        let _ = rng.next_u64();
        rng
    }
}
