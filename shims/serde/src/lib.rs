//! Offline stand-in for `serde`.
//!
//! The workspace only ever *annotates* types with
//! `#[derive(Serialize, Deserialize)]` — nothing serialises through serde at
//! runtime (persistence uses the explicit binary format in
//! `vdstore::persist`). With no network access to crates.io, this shim
//! provides the two derive macros as no-ops so the annotations compile.
//! Swapping in the real `serde` later is a one-line Cargo change; no source
//! edits needed.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
