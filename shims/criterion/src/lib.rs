//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with a
//! simple mean-of-samples wall-clock measurement and plain-text output.
//! There is no statistical analysis, HTML report or outlier rejection; the
//! numbers are indicative and the benches stay runnable offline.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark time budget (advisory in this shim).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name, sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let samples = self.sample_size;
        run_one(&id, samples, f);
    }
}

/// A named collection of benchmarks sharing the driver's settings.
///
/// Holds its own sample-size override so a group-level `sample_size` call
/// never leaks into later groups (matching upstream criterion's scoping).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    // one untimed warm-up pass
    f(&mut bencher);
    bencher.elapsed = Duration::ZERO;
    bencher.iterations = 0;
    for _ in 0..samples {
        f(&mut bencher);
    }
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    println!("bench {id}: {per_iter:?}/iter over {} iterations", bencher.iterations);
}

/// Passed to benchmark closures; times the routine under test.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine` (criterion would run it many times
    /// per sample; the shim keeps one-per-sample for predictable runtimes).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        std_black_box(out);
    }
}

/// Declares a group of benchmark targets, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("count", |b| {
                b.iter(|| {
                    runs += 1;
                    black_box(runs)
                })
            });
            group.finish();
        }
        // 1 warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_sample_size_does_not_leak_into_later_groups() {
        let mut c = Criterion::default().sample_size(2);
        let mut first = 0usize;
        let mut second = 0usize;
        {
            let mut group = c.benchmark_group("a");
            group.sample_size(5);
            group.bench_function("x", |b| b.iter(|| first += 1));
            group.finish();
        }
        {
            let mut group = c.benchmark_group("b");
            group.bench_function("y", |b| b.iter(|| second += 1));
            group.finish();
        }
        assert_eq!(first, 6, "group override applies within the group");
        assert_eq!(second, 3, "later groups keep the driver's setting");
    }
}
