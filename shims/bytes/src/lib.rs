//! Offline stand-in for the `bytes` crate.
//!
//! Vendors the subset `vdstore::persist` uses: [`BytesMut`] as a growable
//! write buffer, [`Bytes`] as its frozen read-only form, [`BufMut`] for
//! little-endian puts and [`Buf`] for little-endian reads over `&[u8]`.
//! Unlike upstream there is no reference-counted zero-copy splitting — the
//! workspace never needs it.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable, contiguous byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer for sequential writes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential little-endian writes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Sequential little-endian reads that consume the buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the buffer and advances past them.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"hdr");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f64_le(-1.5);
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 3 + 1 + 4 + 8 + 8);

        let mut r: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
