//! Cross-crate integration test: the worked example of Section 4.2 /
//! Table 2, exercised through every layer of the system — the storage
//! substrate, the metric bounds, the BOND engine, the relational-algebra
//! formulation and the sequential-scan baseline must all tell the same
//! story.

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering, RowId};
use bond_baselines::sequential_scan;
use bond_metrics::HistogramIntersection;
use bond_relalg::BondHqProgram;
use vdstore::DecomposedTable;

fn collection() -> Vec<Vec<f64>> {
    vec![
        vec![0.1, 0.3, 0.4, 0.2],
        vec![0.05, 0.05, 0.9, 0.0],
        vec![0.8, 0.1, 0.05, 0.05],
        vec![0.2, 0.6, 0.1, 0.1],
        vec![0.7, 0.15, 0.15, 0.0],
        vec![0.925, 0.0, 0.0, 0.025],
        vec![0.55, 0.2, 0.15, 0.1],
        vec![0.05, 0.1, 0.05, 0.8],
        vec![0.45, 0.5, 0.05, 0.05],
    ]
}

fn query() -> Vec<f64> {
    vec![0.7, 0.15, 0.1, 0.05]
}

fn sorted_rows(rows: impl IntoIterator<Item = RowId>) -> Vec<RowId> {
    let mut v: Vec<RowId> = rows.into_iter().collect();
    v.sort_unstable();
    v
}

#[test]
fn table2_worked_example_end_to_end() {
    let table = DecomposedTable::from_vectors("table2", &collection()).unwrap();
    let q = query();
    let k = 3;
    let params = BondParams {
        schedule: BlockSchedule::Fixed(2),
        ordering: DimensionOrdering::Natural,
        ..BondParams::default()
    };

    // sequential scan (ground truth): {h3, h5, h7} = rows {2, 4, 6}
    let truth = sequential_scan(&table.to_row_matrix(), &q, k, &HistogramIntersection);
    assert_eq!(sorted_rows(truth.hits.iter().map(|h| h.row)), vec![2, 4, 6]);

    // BOND engine, both criteria
    let searcher = BondSearcher::new(&table);
    let hq = searcher.histogram_intersection_hq(&q, k, &params).unwrap();
    let hh = searcher.histogram_intersection_hh(&q, k, &params).unwrap();
    assert_eq!(sorted_rows(hq.hits.iter().map(|h| h.row)), vec![2, 4, 6]);
    assert_eq!(sorted_rows(hh.hits.iter().map(|h| h.row)), vec![2, 4, 6]);

    // the paper's pruning narrative: Hq removes 4 histograms after m = 2,
    // Hh already isolates the answer set
    assert_eq!(hq.trace.checkpoints[0].candidates, 5);
    assert_eq!(hh.trace.checkpoints[0].candidates, 3);

    // the relational-algebra formulation agrees
    let mil = BondHqProgram::new(k, 2).unwrap().execute(&table, &q).unwrap();
    assert_eq!(sorted_rows(mil.hits.iter().map(|h| h.row)), vec![2, 4, 6]);

    // exact similarities match Table 2's S column
    let mut scores: Vec<f64> = hq.hits.iter().map(|h| h.score).collect();
    scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
    assert!((scores[0] - 0.95).abs() < 1e-12); // h5
    assert!((scores[1] - 0.90).abs() < 1e-12); // h3
    assert!((scores[2] - 0.85).abs() < 1e-12); // h7
}

#[test]
fn persisted_collection_round_trips_through_search() {
    let table = DecomposedTable::from_vectors("table2", &collection()).unwrap();
    let bytes = vdstore::persist::table_to_bytes(&table);
    let reloaded = vdstore::persist::table_from_bytes(&bytes).unwrap();
    let searcher = BondSearcher::new(&reloaded);
    let outcome = searcher.histogram_intersection_hq(&query(), 3, &BondParams::default()).unwrap();
    assert_eq!(sorted_rows(outcome.hits.iter().map(|h| h.row)), vec![2, 4, 6]);
}

#[test]
fn tombstoned_rows_are_excluded_across_the_stack() {
    let mut table = DecomposedTable::from_vectors("table2", &collection()).unwrap();
    table.delete(4).unwrap(); // remove h5, the best match
    let searcher = BondSearcher::new(&table);
    let outcome = searcher.histogram_intersection_hh(&query(), 3, &BondParams::default()).unwrap();
    let rows = sorted_rows(outcome.hits.iter().map(|h| h.row));
    assert!(!rows.contains(&4));
    assert_eq!(rows.len(), 3);
    // after reorganisation the same search still works on compacted row ids
    table.reorganize();
    let searcher = BondSearcher::new(&table);
    let outcome = searcher.histogram_intersection_hh(&query(), 3, &BondParams::default()).unwrap();
    assert_eq!(outcome.hits.len(), 3);
}
