//! Cross-crate integration test: on a realistic generated workload, every
//! search method in the repository — BOND with each criterion, BOND on
//! compressed fragments, the VA-File, the sequential scans and the
//! relational-algebra plan — must return the same top-k answers.

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};
use bond_baselines::{sequential_scan, sequential_scan_early_abandon, VaFile};
use bond_datagen::{sample_queries, CorelLikeConfig};
use bond_metrics::{HistogramIntersection, SquaredEuclidean};
use bond_relalg::BondHqProgram;
use vdstore::QuantizedTable;

fn sorted_scores(scores: impl IntoIterator<Item = f64>) -> Vec<f64> {
    let mut v: Vec<f64> = scores.into_iter().collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

fn assert_scores_match(label: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: result sizes differ");
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < 1e-9, "{label}: {x} vs {y}");
    }
}

#[test]
fn all_methods_agree_on_corel_like_workload() {
    let table = CorelLikeConfig::small(1_500, 48).generate();
    let matrix = table.to_row_matrix();
    let quantized = QuantizedTable::from_table(&table, 8).unwrap();
    let vafile = VaFile::build(&table, 8).unwrap();
    let searcher = BondSearcher::new(&table);
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };
    let k = 10;

    for query in sample_queries(&table, 5, 11) {
        // Histogram intersection family.
        let truth = sequential_scan(&matrix, &query, k, &HistogramIntersection);
        let truth_scores = sorted_scores(truth.hits.iter().map(|h| h.score));

        let hq = searcher.histogram_intersection_hq(&query, k, &params).unwrap();
        assert_scores_match("Hq", &sorted_scores(hq.hits.iter().map(|h| h.score)), &truth_scores);

        let hh = searcher.histogram_intersection_hh(&query, k, &params).unwrap();
        assert_scores_match("Hh", &sorted_scores(hh.hits.iter().map(|h| h.score)), &truth_scores);

        let mil = BondHqProgram::new(k, 8).unwrap().execute(&table, &query).unwrap();
        assert_scores_match("MIL", &sorted_scores(mil.hits.iter().map(|h| h.score)), &truth_scores);

        let compressed =
            bond::search_compressed_histogram(&table, &quantized, &query, k, &params).unwrap();
        assert_scores_match(
            "compressed",
            &sorted_scores(compressed.hits.iter().map(|h| h.score)),
            &truth_scores,
        );

        let va = vafile.search_histogram(&matrix, &query, k);
        assert_scores_match(
            "VA-File",
            &sorted_scores(va.hits.iter().map(|h| h.score)),
            &truth_scores,
        );

        let abandon = sequential_scan_early_abandon(&matrix, &query, k, &HistogramIntersection, 8);
        assert_scores_match(
            "early abandon",
            &sorted_scores(abandon.hits.iter().map(|h| h.score)),
            &truth_scores,
        );

        // Euclidean family.
        let truth_e = sequential_scan(&matrix, &query, k, &SquaredEuclidean);
        let truth_e_scores = sorted_scores(truth_e.hits.iter().map(|h| h.score));
        let ev = searcher.euclidean_ev(&query, k, &params).unwrap();
        assert_scores_match("Ev", &sorted_scores(ev.hits.iter().map(|h| h.score)), &truth_e_scores);
        let va_e = vafile.search_euclidean(&matrix, &query, k);
        assert_scores_match(
            "VA-File (euclid)",
            &sorted_scores(va_e.hits.iter().map(|h| h.score)),
            &truth_e_scores,
        );
    }
}

#[test]
fn bond_does_less_work_than_the_scan_on_skewed_data() {
    let table = CorelLikeConfig::small(3_000, 96).generate();
    let searcher = BondSearcher::new(&table);
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };
    let naive_work = (table.rows() * table.dims()) as f64;
    let mut total_fraction = 0.0;
    let queries = sample_queries(&table, 10, 3);
    for query in &queries {
        let outcome = searcher.histogram_intersection_hq(query, 10, &params).unwrap();
        total_fraction += outcome.trace.contributions_evaluated as f64 / naive_work;
    }
    let avg_fraction = total_fraction / queries.len() as f64;
    assert!(
        avg_fraction < 0.35,
        "BOND performed {:.0}% of the naive work; expected a large saving",
        avg_fraction * 100.0
    );
}
