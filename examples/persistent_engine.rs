//! The persistent segment store: build a clustered collection, persist it
//! with its stats/zone-map footer, cold-open it from disk, and check the
//! reopened engine answers exactly like the in-memory one.
//!
//! ```text
//! # self-contained demo (persist + reopen in one process, temp file)
//! cargo run --release --example persistent_engine
//!
//! # cross-process check, as the CI persistence-smoke job runs it:
//! cargo run --release --example persistent_engine -- persist /tmp/bond_store
//! cargo run --release --example persistent_engine -- verify  /tmp/bond_store
//! ```
//!
//! `persist` builds a deterministic collection, persists the store and
//! writes the expected top-k answers (bit-exact, as `f64::to_bits` hex) for
//! all four rules to a sidecar file. `verify` — typically a *separate
//! process* — cold-opens the store via `EngineBuilder::open`, re-runs the
//! same queries and exits non-zero on any deviation: bit-identical hits
//! under uniform planning, rank-identical hits under adaptive planning.

use std::path::{Path, PathBuf};
use std::time::Instant;

use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, EngineBuilder, PlannerKind, QuerySpec, RuleKind};
use vdstore::{DecomposedTable, StorageBackend};

const ROWS: usize = 20_000;
const DIMS: usize = 32;
const K: usize = 10;
const N_QUERIES: usize = 8;
const PARTITIONS: usize = 8;
const QUERY_SEED: u64 = 4321;

/// The deterministic collection both processes regenerate identically.
fn collection() -> DecomposedTable {
    ClusteredConfig { clusters: 16, ..ClusteredConfig::small(ROWS, DIMS, 0.0) }
        .with_cluster_major(true)
        .generate()
}

fn rules() -> [RuleKind; 4] {
    RuleKind::ALL
}

fn in_memory_engine(table: DecomposedTable) -> Engine {
    Engine::builder(table)
        .partitions(PARTITIONS)
        .threads(2)
        .build()
        .expect("valid engine configuration")
}

/// One expected-answer line: `rule query_index rank row score_bits`.
fn answer_lines(engine: &Engine, queries: &[Vec<f64>]) -> Vec<String> {
    let mut lines = Vec::new();
    for rule in rules() {
        for (qi, q) in queries.iter().enumerate() {
            let spec = QuerySpec::new(q.clone(), K).rule(rule.clone());
            let outcome = engine.search_spec(&spec).expect("query executes");
            for (rank, hit) in outcome.hits.iter().enumerate() {
                lines.push(format!(
                    "{} {qi} {rank} {} {:016x}",
                    rule.name(),
                    hit.row,
                    hit.score.to_bits()
                ));
            }
        }
    }
    lines
}

fn expected_path(store: &Path) -> PathBuf {
    store.with_extension("expected")
}

fn persist(store: &Path) {
    let table = collection();
    let queries = sample_queries(&table, N_QUERIES, QUERY_SEED);
    let timer = Instant::now();
    let engine = in_memory_engine(table);
    println!("built in-memory engine in {:.1} ms", timer.elapsed().as_secs_f64() * 1000.0);

    let timer = Instant::now();
    engine.persist(store).expect("store persists");
    let file_mb = std::fs::metadata(store).map(|m| m.len() as f64 / 1e6).unwrap_or(0.0);
    println!(
        "persisted {} rows x {} dims + {} segment stats footers to {} ({file_mb:.1} MB) \
         in {:.1} ms",
        engine.table().rows(),
        engine.table().dims(),
        engine.partitions(),
        store.display(),
        timer.elapsed().as_secs_f64() * 1000.0,
    );

    let lines = answer_lines(&engine, &queries);
    std::fs::write(expected_path(store), lines.join("\n") + "\n").expect("expected file writes");
    println!("wrote {} expected answers to {}", lines.len(), expected_path(store).display());
}

fn verify(store: &Path) {
    let backend = StorageBackend::from_env();
    let timer = Instant::now();
    let engine = EngineBuilder::open(store)
        .expect("store reopens")
        .threads(2)
        .build()
        .expect("reopened engine builds");
    println!(
        "cold-opened {} via {:?} (columns: {:?}) in {:.1} ms",
        store.display(),
        backend,
        engine.storage_backend(),
        timer.elapsed().as_secs_f64() * 1000.0,
    );

    // queries are re-derived deterministically from the reopened table
    let queries = sample_queries(engine.table(), N_QUERIES, QUERY_SEED);
    let expected = std::fs::read_to_string(expected_path(store)).expect("expected file reads");
    let got = answer_lines(&engine, &queries);
    let expected: Vec<&str> = expected.lines().collect();
    if expected.len() != got.len() {
        eprintln!("FAIL: {} expected answers, {} computed", expected.len(), got.len());
        std::process::exit(1);
    }
    let mut mismatches = 0;
    for (e, g) in expected.iter().zip(&got) {
        if *e != g.as_str() {
            if mismatches < 10 {
                eprintln!("FAIL: expected `{e}`, got `{g}`");
            }
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} of {} answers deviate", got.len());
        std::process::exit(1);
    }
    println!(
        "OK: {} answers bit-identical across the process boundary ({} rules x {} queries x k={K})",
        got.len(),
        rules().len(),
        N_QUERIES,
    );

    // adaptive planning on the reopened engine: rank-correct + zone-map
    // skips driven purely by the footer statistics
    let mut skipped = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        let spec =
            QuerySpec::new(q.clone(), K).rule(RuleKind::EuclideanEv).planner(PlannerKind::Adaptive);
        let adaptive = engine.search_spec(&spec).expect("adaptive query executes");
        let reference = engine.sequential_reference_spec(&spec).expect("reference executes");
        skipped += adaptive.segments_skipped();
        if adaptive.hits.len() != reference.len() {
            eprintln!(
                "FAIL: adaptive query {qi}: {} hits vs {} in the reference",
                adaptive.hits.len(),
                reference.len()
            );
            std::process::exit(1);
        }
        for (rank, (a, r)) in adaptive.hits.iter().zip(&reference).enumerate() {
            if a.row != r.row {
                eprintln!("FAIL: adaptive query {qi} rank {rank}: row {} vs {}", a.row, r.row);
                std::process::exit(1);
            }
        }
    }
    println!(
        "OK: adaptive planning rank-correct on the reopened engine; \
         {skipped} of {} segment searches skipped via persisted zone maps",
        N_QUERIES * PARTITIONS,
    );
}

fn demo() {
    let dir = std::env::temp_dir().join(format!("bond_persistent_engine_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store = dir.join("demo.bondvd");
    persist(&store);
    verify(&store);

    // cold-open cost vs. rebuild cost, side by side
    let timer = Instant::now();
    let rebuilt = in_memory_engine(collection());
    let rebuild_ms = timer.elapsed().as_secs_f64() * 1000.0;
    let timer = Instant::now();
    let reopened = EngineBuilder::open(&store).expect("reopens").build().expect("builds");
    let reopen_ms = timer.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(reopened.segment_stats(), rebuilt.segment_stats());
    println!(
        "cold open {reopen_ms:.1} ms vs generate+build {rebuild_ms:.1} ms \
         (footer stats bit-identical to rebuilt stats)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => demo(),
        [mode, path] if mode == "persist" => persist(Path::new(path)),
        [mode, path] if mode == "verify" => verify(Path::new(path)),
        _ => {
            eprintln!("usage: persistent_engine [persist|verify <path>]");
            std::process::exit(2);
        }
    }
}
