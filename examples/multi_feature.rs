//! Multi-feature (complex) queries, Section 8.2 — through the engine.
//!
//! "Find the k images most similar to image A in color AND to image B in
//! texture." The example builds two feature collections over the same set
//! of objects and submits the combination request as a first-class
//! [`bond_repro::QuerySpec`]: the engine runs one synchronized scan per
//! segment, merging partial-score bounds under the shared-κ protocol. The
//! answer is checked bit for bit against the sequential
//! [`MultiFeatureSearcher`] and compared against the classical
//! stream-merging evaluation.
//!
//! ```text
//! cargo run --release --example multi_feature
//! ```

use std::sync::Arc;
use std::time::Instant;

use bond::{
    BlockSchedule, BondParams, BondSearcher, DimensionOrdering, FeatureMetricKind, FeatureQuery,
    MultiFeatureSearcher,
};
use bond_baselines::{merge_streams, RankedStream};
use bond_datagen::ClusteredConfig;
use bond_metrics::{DecomposableMetric, SquaredEuclidean};
use bond_repro::{AggregateSpec, Engine, FeatureSpec, MultiFeatureSpec, QuerySpec};
use vdstore::topk::Scored;
use vdstore::DecomposedTable;

fn similarity(table: &DecomposedTable, row: u32, query: &[f64]) -> f64 {
    let d = SquaredEuclidean.score(&table.row(row).expect("row exists"), query);
    SquaredEuclidean::similarity_from_distance(d, table.dims())
}

fn main() {
    let objects = 10_000;
    let k = 10;
    // Two feature collections over the same objects: a 64-dim "color"
    // feature and a 128-dim "texture" feature (the Section 8.2 setup).
    let color = ClusteredConfig::small(objects, 64, 1.0).generate();
    let texture = Arc::new(ClusteredConfig::small(objects, 128, 1.0).with_seed(2).generate());

    // Query: color of object A, texture of object B.
    let color_query = color.row(10).expect("row exists");
    let texture_query = texture.row(20).expect("row exists");

    // The engine owns the color collection; the texture collection rides
    // along as an external feature sharing the same row-id space.
    let engine =
        Engine::builder(color.clone()).partitions(8).threads(4).build().expect("valid engine");

    for (name, aggregate) in [
        (
            "weighted average (color 0.7, texture 0.3)",
            AggregateSpec::WeightedAverage(vec![0.7, 0.3]),
        ),
        ("fuzzy min (must match both)", AggregateSpec::FuzzyMin),
    ] {
        println!("== aggregate: {name} ==");
        let spec = QuerySpec::multi_feature(
            MultiFeatureSpec::new(
                vec![
                    FeatureSpec::new(color_query.clone(), FeatureMetricKind::Euclidean),
                    FeatureSpec::external(
                        texture_query.clone(),
                        FeatureMetricKind::Euclidean,
                        texture.clone(),
                    ),
                ],
                aggregate.clone(),
            ),
            k,
        );
        println!("{}", engine.explain(&spec).expect("explainable spec"));
        let start = Instant::now();
        let outcome = engine.search_spec(&spec).expect("engine multi-feature search");
        let engine_ms = start.elapsed().as_secs_f64() * 1000.0;
        println!("engine synchronized search ({engine_ms:.2} ms):");
        for hit in outcome.hits.iter().take(5) {
            println!("  object {:>5}  combined similarity {:.4}", hit.row, hit.score);
        }

        // The sequential reference: one synchronized scan over the full
        // tables. The partitioned engine must agree bit for bit.
        let multi = MultiFeatureSearcher::new(vec![&color, &texture]).expect("same row space");
        let feature_queries = vec![
            FeatureQuery { query: color_query.clone(), metric: FeatureMetricKind::Euclidean },
            FeatureQuery { query: texture_query.clone(), metric: FeatureMetricKind::Euclidean },
        ];
        let agg = aggregate.build().expect("valid aggregate");
        let sync = multi
            .search(&feature_queries, agg.as_ref(), k, BlockSchedule::Fixed(8))
            .expect("synchronized search succeeds");
        assert_eq!(outcome.hits, sync.hits);
        println!("engine answer is bit-identical to the sequential synchronized searcher");

        // The stream-merging baseline: a ranked stream per feature (depth
        // 4·k), merged with the threshold algorithm + random accesses.
        let params = BondParams {
            schedule: BlockSchedule::Fixed(8),
            ordering: DimensionOrdering::QueryValueDescending,
            ..BondParams::default()
        };
        let start = Instant::now();
        let color_searcher = BondSearcher::new(&color);
        let texture_searcher = BondSearcher::new(&texture);
        let stream = |searcher: &BondSearcher<'_>, q: &[f64], dims: usize| {
            let outcome = searcher.euclidean_ev(q, 4 * k, &params).expect("stream search");
            RankedStream::new(
                outcome
                    .hits
                    .into_iter()
                    .map(|h| Scored {
                        row: h.row,
                        score: SquaredEuclidean::similarity_from_distance(h.score, dims),
                    })
                    .collect(),
            )
        };
        let streams = [
            stream(&color_searcher, &color_query, 64),
            stream(&texture_searcher, &texture_query, 128),
        ];
        let ra = |f: usize, row: u32| -> f64 {
            if f == 0 {
                similarity(&color, row, &color_query)
            } else {
                similarity(&texture, row, &texture_query)
            }
        };
        let merged = merge_streams(&streams, &ra, agg.as_ref(), k);
        let merge_ms = start.elapsed().as_secs_f64() * 1000.0;
        println!(
            "stream merging ({merge_ms:.2} ms, {} sorted / {} random accesses, certified: {}):",
            merged.sorted_accesses, merged.random_accesses, merged.complete
        );
        for hit in merged.hits.iter().take(5) {
            println!("  object {:>5}  combined similarity {:.4}", hit.row, hit.score);
        }
        println!("engine speedup over stream merging: {:.2}x\n", merge_ms / engine_ms);
    }
}
