//! Multi-feature (complex) queries, Section 8.2.
//!
//! "Find the k images most similar to image A in color AND to image B in
//! texture." The example builds two feature collections over the same set
//! of objects, runs the synchronized BOND search for both the weighted
//! average and the fuzzy-min aggregate, and compares it against the
//! classical stream-merging evaluation.
//!
//! ```text
//! cargo run --release --example multi_feature
//! ```

use std::time::Instant;

use bond::{
    BlockSchedule, BondParams, BondSearcher, DimensionOrdering, FeatureMetricKind, FeatureQuery,
    MultiFeatureSearcher,
};
use bond_baselines::{merge_streams, RankedStream};
use bond_datagen::ClusteredConfig;
use bond_metrics::{
    DecomposableMetric, FuzzyMin, ScoreAggregate, SquaredEuclidean, WeightedAverage,
};
use vdstore::topk::Scored;
use vdstore::DecomposedTable;

fn similarity(table: &DecomposedTable, row: u32, query: &[f64]) -> f64 {
    let d = SquaredEuclidean.score(&table.row(row).expect("row exists"), query);
    SquaredEuclidean::similarity_from_distance(d, table.dims())
}

fn main() {
    let objects = 10_000;
    let k = 10;
    // Two feature collections over the same objects: a 64-dim "color"
    // feature and a 128-dim "texture" feature (the Section 8.2 setup).
    let color = ClusteredConfig::small(objects, 64, 1.0).generate();
    let texture = ClusteredConfig::small(objects, 128, 1.0).with_seed(2).generate();

    // Query: color of object A, texture of object B.
    let color_query = color.row(10).expect("row exists");
    let texture_query = texture.row(20).expect("row exists");

    let multi = MultiFeatureSearcher::new(vec![&color, &texture]).expect("same row space");
    let feature_queries = vec![
        FeatureQuery { query: color_query.clone(), metric: FeatureMetricKind::Euclidean },
        FeatureQuery { query: texture_query.clone(), metric: FeatureMetricKind::Euclidean },
    ];

    for (name, aggregate) in [
        (
            "weighted average (color 0.7, texture 0.3)",
            Box::new(WeightedAverage::new(vec![0.7, 0.3]).expect("valid weights"))
                as Box<dyn ScoreAggregate>,
        ),
        ("fuzzy min (must match both)", Box::new(FuzzyMin)),
    ] {
        println!("== aggregate: {name} ==");
        let start = Instant::now();
        let sync = multi
            .search(&feature_queries, aggregate.as_ref(), k, BlockSchedule::Fixed(8))
            .expect("synchronized search succeeds");
        let sync_ms = start.elapsed().as_secs_f64() * 1000.0;
        println!("synchronized BOND search ({sync_ms:.2} ms):");
        for hit in sync.hits.iter().take(5) {
            println!("  object {:>5}  combined similarity {:.4}", hit.row, hit.score);
        }

        // The stream-merging baseline: a ranked stream per feature (depth
        // 4·k), merged with the threshold algorithm + random accesses.
        let params = BondParams {
            schedule: BlockSchedule::Fixed(8),
            ordering: DimensionOrdering::QueryValueDescending,
            ..BondParams::default()
        };
        let start = Instant::now();
        let color_searcher = BondSearcher::new(&color);
        let texture_searcher = BondSearcher::new(&texture);
        let stream = |searcher: &BondSearcher<'_>, q: &[f64], dims: usize| {
            let outcome = searcher.euclidean_ev(q, 4 * k, &params).expect("stream search");
            RankedStream::new(
                outcome
                    .hits
                    .into_iter()
                    .map(|h| Scored {
                        row: h.row,
                        score: SquaredEuclidean::similarity_from_distance(h.score, dims),
                    })
                    .collect(),
            )
        };
        let streams = [
            stream(&color_searcher, &color_query, 64),
            stream(&texture_searcher, &texture_query, 128),
        ];
        let ra = |f: usize, row: u32| -> f64 {
            if f == 0 {
                similarity(&color, row, &color_query)
            } else {
                similarity(&texture, row, &texture_query)
            }
        };
        let merged = merge_streams(&streams, &ra, aggregate.as_ref(), k);
        let merge_ms = start.elapsed().as_secs_f64() * 1000.0;
        println!(
            "stream merging ({merge_ms:.2} ms, {} sorted / {} random accesses, certified: {}):",
            merged.sorted_accesses, merged.random_accesses, merged.complete
        );
        for hit in merged.hits.iter().take(5) {
            println!("  object {:>5}  combined similarity {:.4}", hit.row, hit.score);
        }
        println!("synchronized speedup: {:.2}x\n", merge_ms / sync_ms);
    }
}
