//! Predicate-filtered k-NN and relational pushdown, Section 6.1.
//!
//! "Find the 10 most similar images *among those taken after 1998*": a
//! relational predicate restricts which rows compete for the top-k. The
//! example pushes the predicate into the engine two ways — directly, as
//! an eligibility bitmap on a [`bond_repro::QuerySpec`], and through a
//! [`bond_repro::KnnProgram`] whose range selects run on `bond-relalg`'s
//! algebraic operators before the k-NN step — and verifies both against a
//! brute-force filter-then-scan.
//!
//! ```text
//! cargo run --release --example filtered_search
//! ```

use std::time::Instant;

use bond_datagen::ClusteredConfig;
use bond_repro::{Engine, KnnProgram, QuerySpec};
use vdstore::{Bitmap, TopKLargest};

fn main() {
    let objects = 20_000;
    let dims = 32;
    let k = 10;
    let table = ClusteredConfig::small(objects, dims, 1.0).generate();
    let query = table.row(123).expect("row exists");

    let engine =
        Engine::builder(table.clone()).partitions(8).threads(4).build().expect("valid engine");

    // The predicate: an arbitrary attribute selection — here "every third
    // object", as if a date column had been selected first.
    let eligible: Vec<u32> = (0..objects as u32).filter(|r| r % 3 == 0).collect();
    let filter = Bitmap::from_rows(objects, &eligible);
    println!(
        "predicate keeps {} of {} rows ({:.1}%)",
        filter.count(),
        objects,
        filter.density() * 100.0
    );

    // 1. The filter as a first-class part of the request.
    let spec = QuerySpec::new(query.clone(), k).filter(filter.clone());
    println!("{}", engine.explain(&spec).expect("explainable spec"));
    let start = Instant::now();
    let outcome = engine.search_spec(&spec).expect("filtered search");
    let engine_ms = start.elapsed().as_secs_f64() * 1000.0;
    println!("filtered engine search ({engine_ms:.2} ms):");
    for hit in outcome.hits.iter().take(5) {
        println!("  object {:>5}  similarity {:.4}", hit.row, hit.score);
    }
    assert!(outcome.hits.iter().all(|h| h.row % 3 == 0));

    // 2. Brute force: filter, then score every eligible row exactly.
    let start = Instant::now();
    let mut heap = TopKLargest::new(k);
    for &row in &eligible {
        let v = table.row(row).expect("row exists");
        let score: f64 = v.iter().zip(&query).map(|(a, b)| a.min(*b)).sum();
        heap.push(row, score);
    }
    let brute = heap.into_sorted_vec();
    let brute_ms = start.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(
        outcome.hits.iter().map(|h| h.row).collect::<Vec<_>>(),
        brute.iter().map(|h| h.row).collect::<Vec<_>>(),
    );
    println!("bit-identical to brute-force filter-then-scan ({brute_ms:.2} ms)");
    println!(
        "scanned {} cells vs {} for the unfiltered full scan\n",
        outcome.contributions_evaluated(),
        objects * dims
    );

    // 3. The same predicate as a relational program: range selects run on
    //    the algebraic operators, their conjunction becomes the filter.
    let run = KnnProgram::knn(query, k)
        .select(0, 0.0, 0.5)
        .select(1, 0.0, 0.5)
        .execute(&engine)
        .expect("relational program");
    println!("relational program ({} rows eligible after selects):", run.eligible_rows);
    for line in &run.script {
        println!("  {line}");
    }
    for hit in run.outcome.hits.iter().take(5) {
        println!("  object {:>5}  similarity {:.4}", hit.row, hit.score);
    }
    println!("relational pushdown executed on the engine");
}
