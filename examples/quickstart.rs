//! Quickstart: build a small histogram collection, decompose it vertically,
//! and run a k-NN query with BOND under both similarity metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};
use bond_datagen::CorelLikeConfig;

fn main() {
    // 1. Generate a synthetic "image collection": 5,000 color histograms
    //    with 64 bins each, normalized to sum to 1. In a real application
    //    these would be extracted from images; the storage layer does not
    //    care where the vectors come from.
    let table = CorelLikeConfig::small(5_000, 64).generate();
    println!(
        "collection: {} histograms x {} bins, stored as {} dimensional fragments",
        table.rows(),
        table.dims(),
        table.dims()
    );

    // 2. Pick a query image from the collection (the paper's protocol) and
    //    configure the search: k = 5 neighbours, scan 8 dimensions between
    //    pruning attempts, process dimensions in decreasing query order.
    let query = table.row(42).expect("row exists");
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };
    let searcher = BondSearcher::new(&table);

    // 3. Histogram intersection with the query-only pruning criterion Hq —
    //    the configuration the paper finds fastest.
    let outcome = searcher.histogram_intersection_hq(&query, 5, &params).expect("search succeeds");
    println!("\ntop-5 by histogram intersection (criterion Hq):");
    for hit in &outcome.hits {
        println!("  image {:>5}  similarity {:.4}", hit.row, hit.score);
    }
    let trace = &outcome.trace;
    println!(
        "  pruning: {} of {} dimension fragments read, {:.1}% of the naive work performed",
        trace.dims_accessed,
        table.dims(),
        100.0 * trace.work_fraction(table.rows(), table.dims()),
    );

    // 4. The same query under squared Euclidean distance with the
    //    per-vector criterion Ev.
    let outcome = searcher.euclidean_ev(&query, 5, &params).expect("search succeeds");
    println!("\ntop-5 by Euclidean distance (criterion Ev):");
    for hit in &outcome.hits {
        println!("  image {:>5}  squared distance {:.6}", hit.row, hit.score);
    }

    // 5. The candidate-set trace is the data behind the paper's figures.
    println!("\ncandidate set after each pruning attempt (Ev):");
    for cp in &outcome.trace.checkpoints {
        println!(
            "  after {:>3} dims: {:>6} candidates ({} pruned in this step)",
            cp.dims_processed, cp.candidates, cp.pruned_now
        );
    }
}
