//! Per-segment adaptive search plans on clustered data: stats-driven
//! dimension orderings, warmup schedules and κ-aware whole-segment
//! skipping, compared against the uniform (global-plan) engine.
//!
//! ```text
//! cargo run --release --example adaptive_search
//! ```

use std::sync::Arc;
use std::time::Instant;

use bond_datagen::ClusteredConfig;
use bond_exec::{Engine, PlannerKind, RequestBatch, RuleKind};

fn main() {
    // 1. A clustered collection in the cluster-major layout: vectors were
    //    "appended in batches", so contiguous row segments hold different
    //    clusters and their statistics diverge — the regime per-segment
    //    planning is built for.
    let table = Arc::new(
        ClusteredConfig { clusters: 12, ..ClusteredConfig::small(30_000, 32, 0.0) }
            .with_cluster_major(true)
            .generate(),
    );
    let k = 10;
    let partitions = 8;
    let queries: Vec<Vec<f64>> =
        (0..12).map(|i| table.row((i * 2500 + 7) as u32).unwrap()).collect();
    println!(
        "collection: {} clustered vectors x {} dims (cluster-major), {} queries, k = {k}",
        table.rows(),
        table.dims(),
        queries.len(),
    );

    // 2. Two engines over the same table: one global plan vs. one plan per
    //    segment (plus zone-map segment skipping).
    let build = |planner: PlannerKind| {
        Engine::builder(table.clone())
            .partitions(partitions)
            .threads(1) // isolate plan quality from parallel speedup
            .rule(RuleKind::EuclideanEv)
            .planner(planner)
            .build()
            .expect("valid engine configuration")
    };
    let uniform = build(PlannerKind::Uniform);
    let adaptive = build(PlannerKind::Adaptive);

    // 3. The adaptive planner reads the per-segment statistics the engine
    //    cached at build time; show how much the segments disagree.
    let stats = adaptive.segment_stats();
    println!("\nper-segment mean of dimension 0 (segments hold different clusters):");
    for s in stats {
        let mean0 = s.per_dim[0].as_ref().map_or(f64::NAN, |c| c.mean);
        println!("  rows {:>6}..{:<6} mean(dim 0) = {mean0:.3}", s.range.start, s.range.end);
    }

    // 4. Run the same batch through both planners.
    let batch = RequestBatch::from_queries(queries.clone(), k);
    let run = |engine: &Engine, name: &str| {
        let t = Instant::now();
        let outcome = engine.execute(&batch).unwrap();
        let elapsed = t.elapsed();
        let work: u64 = outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();
        let skipped: usize = outcome.queries.iter().map(|q| q.segments_skipped()).sum();
        println!(
            "{name:>9}: {elapsed:?}, {work} contributions, \
             {skipped} of {} segment searches skipped",
            batch.len() * engine.partitions(),
        );
        outcome
    };
    println!();
    let u = run(&uniform, "uniform");
    let a = run(&adaptive, "adaptive");

    // 5. Rank-correctness: the adaptive engine returns the same rows in the
    //    same order (scores re-verified at merge, ties broken on row id).
    for (qu, qa) in u.queries.iter().zip(&a.queries) {
        let rows = |hits: &[vdstore::topk::Scored]| hits.iter().map(|h| h.row).collect::<Vec<_>>();
        assert_eq!(rows(&qu.hits), rows(&qa.hits), "same k-NN set and ranks");
    }
    println!("\nadaptive answers match the uniform engine's, rank for rank");

    // 6. Where the savings come from: one query's per-segment behaviour.
    let q0 = &a.queries[0];
    println!("\nquery 0 under the adaptive planner:");
    for run in &q0.segments {
        if run.trace.segment_skipped {
            println!(
                "  rows {:>6}..{:<6} SKIPPED (zone-map bound outside κ, zero columns touched)",
                run.rows.start, run.rows.end
            );
        } else {
            println!(
                "  rows {:>6}..{:<6} scanned {:>2} dims, {:>2} pruning attempts",
                run.rows.start, run.rows.end, run.trace.dims_accessed, run.trace.pruning_attempts,
            );
        }
    }
}
