//! End-to-end observability walkthrough: EXPLAIN a query, execute it,
//! ANALYZE the outcome against the rendered plan, inspect stage-level
//! spans, and dump the engine's metrics registry in both export formats.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! Builds a clustered, cluster-major collection (the regime where warmed
//! feedback planning skips whole segments), warms a
//! `PlannerKind::Feedback` engine, then walks the full observability
//! surface: `Engine::explain` renders the per-segment plans the cost
//! model chose *without executing*; `QueryOutcome::analyze` joins that
//! rendered plan with the executed `PruneTrace` (estimated vs. scanned
//! cells, prune depth, skip status, plan match); the span ring buffer
//! shows where the batch's wall time went; and
//! `MetricsRegistry::render_text` / `render_json` export the counters in
//! Prometheus-style text and the benches' `BENCH_JSON` convention.

use std::sync::Arc;

use bond_datagen::{sample_queries, ClusteredConfig};
use bond_exec::{Engine, PlannerKind, QuerySpec, RequestBatch, RuleKind, ScanMode};
use bond_obs::span;

fn main() {
    // 1. A clustered collection in the cluster-major layout: contiguous
    //    row segments hold different clusters, so per-segment plans
    //    diverge and the zone map can skip far segments outright.
    let table = Arc::new(
        ClusteredConfig { clusters: 16, ..ClusteredConfig::small(20_000, 32, 0.0) }
            .with_cluster_major(true)
            .generate(),
    );
    let k = 10;
    let engine = Engine::builder(table.clone())
        .partitions(8)
        .threads(2)
        .rule(RuleKind::EuclideanEv)
        .planner(PlannerKind::Feedback)
        .build()
        .expect("valid engine configuration");
    println!(
        "collection: {} clustered vectors x {} dims (cluster-major), 8 partitions, k = {k}",
        table.rows(),
        table.dims(),
    );

    // 2. Turn the span subscriber on (a single atomic flag; while it is
    //    off — the default — every instrumented stage costs one relaxed
    //    load) and warm the feedback planner so its plans come from
    //    observed prune traces rather than a-priori moments.
    span::set_enabled(true);
    let warming = RequestBatch::from_queries(sample_queries(&table, 100, 99), k);
    engine.execute(&warming).expect("warming batch executes");
    println!(
        "warmed on {} queries: {} searches folded into the feedback store",
        warming.len(),
        engine.feedback_snapshot().total_searches(),
    );

    // 3. EXPLAIN: render the plan the engine *would* run — visit order,
    //    per-segment dimension ordering, block schedule, provenance
    //    (a-priori vs. warm feedback), envelope bound, estimated cells —
    //    without executing anything.
    let spec = QuerySpec::new(sample_queries(&table, 1, 4321).remove(0), k);
    let explain = engine.explain(&spec).expect("explainable query");
    println!("\n{explain}");

    // 4. Execute the same spec and ANALYZE: join the executed prune
    //    traces against the rendered plan. Scanned cells are exactly the
    //    summed PruneTrace work counters, and every executed plan must
    //    match the one EXPLAIN rendered.
    let outcome = engine.search_spec(&spec).expect("query executes");
    let analysis = outcome.analyze(&explain);
    println!("{analysis}");
    assert!(analysis.plans_match(), "executed plan diverged from rendered plan");
    assert_eq!(analysis.scanned_cells(), outcome.contributions_evaluated());

    // 5. The same request through the quantized first pass: EXPLAIN now
    //    splits every segment's estimate into a filter phase (the u8 code
    //    sweep) and a refine phase (exact f64 work scaled by the observed
    //    filter selectivity), ANALYZE joins the executed filter counters,
    //    and the answer stays bit-identical to the exact scan.
    let quantized = spec.clone().scan_mode(ScanMode::QuantizedFilter);
    let qexplain = engine.explain(&quantized).expect("explainable query");
    println!("{qexplain}");
    let qoutcome = engine.search_spec(&quantized).expect("query executes");
    assert_eq!(qoutcome.hits, outcome.hits, "the quantized filter must stay bit-identical");
    let qanalysis = qoutcome.analyze(&qexplain);
    println!("{qanalysis}");
    println!(
        "quantized filter: {} code cells swept, {} rows refined exactly, selectivity {:.4} \
         (exact scan touched {} f64 cells)",
        qoutcome.quant_filter_cells(),
        qoutcome.quant_refine_rows(),
        qoutcome.quant_filter_selectivity().unwrap_or(1.0),
        outcome.contributions_evaluated(),
    );

    // 6. Where did the time go? Drain the span ring buffer and aggregate
    //    the per-stage durations of everything run so far.
    let spans = span::take_spans();
    let mut by_stage: Vec<(&'static str, u64, u64)> = Vec::new();
    for s in &spans {
        match by_stage.iter_mut().find(|(stage, _, _)| *stage == s.stage) {
            Some((_, count, total)) => {
                *count += 1;
                *total += s.duration_us;
            }
            None => by_stage.push((s.stage, 1, s.duration_us)),
        }
    }
    by_stage.sort_by_key(|(_, _, total)| std::cmp::Reverse(*total));
    println!("stage-level spans ({} records):", spans.len());
    for (stage, count, total) in &by_stage {
        println!("  {stage:<16} x{count:<5} {total:>8} us total");
    }

    // 7. The metrics registry: every layer of the engine emitted into it.
    //    Prometheus-style text for scraping …
    println!("\nmetrics (Prometheus text format):");
    print!("{}", engine.metrics().render_text());

    // 8. … and the one-line JSON snapshot the perf trajectory consumes.
    println!("\nBENCH_JSON {}", engine.metrics().render_json());
}
