//! Weighted and subspace queries (Section 8.1).
//!
//! A relevance-feedback loop in an image database typically re-weights the
//! feature dimensions between iterations; a user picking "only these color
//! ranges matter" performs a subspace query. Both are natural for BOND
//! because the vertical decomposition lets the engine skip or de-emphasise
//! fragments at will, while tree indexes are locked into the full space.
//!
//! ```text
//! cargo run --release --example weighted_subspace
//! ```

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};
use bond_datagen::{concentrated_weights, ClusteredConfig};

fn main() {
    // A clustered feature collection in the unit hypercube (Section 7.5).
    let table = ClusteredConfig::small(10_000, 64, 1.0).generate();
    let searcher = BondSearcher::new(&table);
    let query = table.row(123).expect("row exists");
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::WeightedQueryDescending,
        ..BondParams::default()
    };
    let k = 5;

    // 1. Plain (unweighted) Euclidean search as the reference.
    let plain = searcher.euclidean_ev(&query, k, &params).expect("search succeeds");
    println!("unweighted nearest neighbours:");
    for hit in &plain.hits {
        println!("  object {:>5}  distance {:.5}", hit.row, hit.score);
    }

    // 2. Weighted search: a user (or a relevance-feedback step) declares 10%
    //    of the dimensions to carry 90% of the importance.
    let weights = concentrated_weights(table.dims(), 0.1, 0.9, 99);
    let weighted = searcher
        .weighted_euclidean(&query, &weights, k, &params)
        .expect("weighted search succeeds");
    println!("\nweighted nearest neighbours (90% of weight on 10% of dims):");
    for hit in &weighted.hits {
        println!("  object {:>5}  weighted distance {:.5}", hit.row, hit.score);
    }
    println!(
        "  pruning read {} of {} fragments ({} pruning attempts)",
        weighted.trace.dims_accessed,
        table.dims(),
        weighted.trace.pruning_attempts
    );

    // 3. Subspace search: only eight chosen dimensions matter. BOND orders
    //    the zero-weight fragments last and in practice never reads them.
    let subspace: Vec<usize> = (0..table.dims()).step_by(8).collect();
    let sub = searcher
        .subspace_euclidean(&query, &subspace, k, &params)
        .expect("subspace search succeeds");
    println!("\nsubspace nearest neighbours (dims {subspace:?}):");
    for hit in &sub.hits {
        println!("  object {:>5}  subspace distance {:.5}", hit.row, hit.score);
    }

    // 4. Show how the weight skew changes pruning effectiveness (Figure 11
    //    in miniature): uniform weights vs. strongly concentrated weights.
    println!("\npruning vs. weight skew (candidates after each attempt):");
    for mass in [0.1, 0.5, 0.9, 0.99] {
        let w = concentrated_weights(table.dims(), 0.1, mass, 7);
        let out = searcher.weighted_euclidean(&query, &w, k, &params).expect("search succeeds");
        let series: Vec<String> = out
            .trace
            .checkpoints
            .iter()
            .take(6)
            .map(|c| format!("{}@{}", c.candidates, c.dims_processed))
            .collect();
        println!("  {:>3.0}% of weight on top 10% dims: {}", mass * 100.0, series.join("  "));
    }
}
