//! Image-retrieval scenario: the workload that motivates the paper.
//!
//! Builds a Corel-like collection at the paper's dimensionality (166 HSV
//! bins), compares BOND against a sequential scan and against the VA-File
//! on the same queries, and prints response times and result agreement —
//! a miniature version of Tables 3 and 4.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use std::time::Instant;

use bond::{BlockSchedule, BondParams, BondSearcher, DimensionOrdering};
use bond_baselines::{sequential_scan, VaFile};
use bond_datagen::{sample_queries, CorelLikeConfig};
use bond_metrics::HistogramIntersection;

fn main() {
    let vectors = 20_000;
    let dims = 166;
    let k = 10;
    println!("generating {vectors} histograms x {dims} bins ...");
    let table = CorelLikeConfig { vectors, dims, ..CorelLikeConfig::default() }.generate();
    let matrix = table.to_row_matrix();
    let queries = sample_queries(&table, 20, 7);

    let searcher = BondSearcher::new(&table);
    let params = BondParams {
        schedule: BlockSchedule::Fixed(8),
        ordering: DimensionOrdering::QueryValueDescending,
        ..BondParams::default()
    };
    let vafile = VaFile::build(&table, 8).expect("va-file build");

    let mut bond_ms = 0.0;
    let mut scan_ms = 0.0;
    let mut va_ms = 0.0;
    let mut agree_scan = true;
    let mut agree_va = true;
    let mut avg_dims_read = 0.0;

    for query in &queries {
        let start = Instant::now();
        let bond_result =
            searcher.histogram_intersection_hq(query, k, &params).expect("bond search succeeds");
        bond_ms += start.elapsed().as_secs_f64() * 1000.0;
        avg_dims_read += bond_result.trace.dims_accessed as f64;

        let start = Instant::now();
        let scan_result = sequential_scan(&matrix, query, k, &HistogramIntersection);
        scan_ms += start.elapsed().as_secs_f64() * 1000.0;

        let start = Instant::now();
        let va_result = vafile.search_histogram(&matrix, query, k);
        va_ms += start.elapsed().as_secs_f64() * 1000.0;

        let rows = |hits: &[vdstore::topk::Scored]| {
            let mut v: Vec<u32> = hits.iter().map(|h| h.row).collect();
            v.sort_unstable();
            v
        };
        if rows(&bond_result.hits) != rows(&scan_result.hits) {
            agree_scan = false;
        }
        if rows(&bond_result.hits) != rows(&va_result.hits) {
            agree_va = false;
        }
    }

    let n = queries.len() as f64;
    println!("\naverage response time over {} queries (k = {k}):", queries.len());
    println!("  BOND (Hq, m = 8)          : {:>8.2} ms", bond_ms / n);
    println!("  sequential scan (SSH)     : {:>8.2} ms", scan_ms / n);
    println!("  VA-File (filter + refine) : {:>8.2} ms", va_ms / n);
    println!("  BOND speedup over scan    : {:>8.2}x", scan_ms / bond_ms);
    println!("\nBOND read {:.1} of {} dimension fragments on average", avg_dims_read / n, dims);
    println!(
        "results identical to sequential scan: {}",
        if agree_scan { "yes" } else { "NO (unexpected)" }
    );
    println!(
        "results identical to VA-File:         {}",
        if agree_va { "yes" } else { "NO (unexpected)" }
    );
}
