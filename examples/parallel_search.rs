//! Parallel, partitioned BOND search: build an [`Engine`] over a synthetic
//! image collection, serve a query batch, and compare answers and work
//! against the classic single-threaded searcher.
//!
//! ```text
//! cargo run --release --example parallel_search
//! ```

use std::sync::Arc;
use std::time::Instant;

use bond::{BondParams, BondSearcher};
use bond_datagen::{sample_queries, CorelLikeConfig};
use bond_exec::{Engine, RequestBatch, RuleKind};

fn main() {
    // 1. A synthetic collection: 60,000 color histograms with 64 bins.
    let table = Arc::new(CorelLikeConfig::small(60_000, 64).generate());
    let k = 10;
    let queries = sample_queries(&table, 24, 42);
    println!(
        "collection: {} histograms x {} bins; {} queries, k = {k}",
        table.rows(),
        table.dims(),
        queries.len(),
    );

    // 2. The sequential reference: one thread, one segment.
    let params = BondParams::default();
    let searcher = BondSearcher::new(&table);
    let t0 = Instant::now();
    let mut sequential = Vec::new();
    for q in &queries {
        sequential.push(searcher.histogram_intersection_hh(q, k, &params).unwrap());
    }
    let seq_elapsed = t0.elapsed();
    println!(
        "\nsequential: {seq_elapsed:?} total ({:?}/query)",
        seq_elapsed / queries.len() as u32
    );

    // 3. The parallel engine: it owns (a share of) the table, partitions
    //    it, pools κ per query, and serves whole request batches.
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let engine = Engine::builder(table.clone())
        .partitions(threads)
        .threads(threads)
        .rule(RuleKind::HistogramHh)
        .build()
        .expect("valid engine configuration");
    println!(
        "engine: {} partitions of ~{} rows, {} worker threads",
        engine.partitions(),
        table.rows() / engine.partitions(),
        engine.threads(),
    );

    let batch = RequestBatch::from_queries(queries.clone(), k);
    let t1 = Instant::now();
    let outcome = engine.execute(&batch).unwrap();
    let par_elapsed = t1.elapsed();
    println!(
        "parallel:   {par_elapsed:?} total ({:?}/query) — {:.2}x speedup",
        par_elapsed / queries.len() as u32,
        seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64(),
    );

    // 4. The answers are identical — same rows, bit-identical scores.
    let mut identical = true;
    for (seq, par) in sequential.iter().zip(&outcome.queries) {
        identical &= seq.hits == par.hits;
    }
    println!("\nanswers identical to the sequential searcher: {identical}");
    assert!(identical);

    // 5. κ sharing at work: every segment prunes with bounds proven by the
    //    others, so the total scanned work stays close to sequential BOND's.
    let rows = table.rows();
    let dims = table.dims();
    let seq_work: u64 = sequential.iter().map(|o| o.trace.contributions_evaluated).sum();
    let par_work: u64 = outcome.queries.iter().map(|q| q.contributions_evaluated()).sum();
    println!(
        "scanned contributions: sequential {:.1}% of naive, parallel {:.1}% of naive",
        100.0 * seq_work as f64 / (rows * dims * queries.len()) as f64,
        100.0 * par_work as f64 / (rows * dims * queries.len()) as f64,
    );

    // 6. Per-segment traces survive: show one query's pruning per segment.
    let q0 = &outcome.queries[0];
    println!("\nquery 0, per-segment pruning:");
    for run in &q0.segments {
        let survivors = run.trace.checkpoints.last().map_or(run.rows.len(), |c| c.candidates);
        println!(
            "  rows {:>6}..{:<6} scanned {:>2} dims, {:>3} pruning attempts, {:>5} survivors",
            run.rows.start,
            run.rows.end,
            run.trace.dims_accessed,
            run.trace.pruning_attempts,
            survivors,
        );
    }
}
