//! A long-lived k-NN service: an owned, `Send + Sync` [`Engine`] behind a
//! [`Server`] front-end that coalesces concurrently submitted requests
//! into engine batches — with per-request `k`, pruning rule and planner.
//!
//! ```text
//! cargo run --release --example service
//! ```

use std::sync::Arc;
use std::time::Instant;

use bond_datagen::{sample_queries, CorelLikeConfig};
use bond_exec::{Engine, PlannerKind, QuerySpec, RuleKind, Server};

fn main() {
    // 1. Build the engine once, at startup. It owns the table (Arc'd), so
    //    nothing ties it to this stack frame: it can be stored in a server
    //    struct and shared across request threads for the process lifetime.
    let table = Arc::new(CorelLikeConfig::small(40_000, 32).generate());
    let engine = Engine::builder(table.clone())
        .partitions(8)
        .threads(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
        .rule(RuleKind::HistogramHh) // the default; requests may override
        .build()
        .expect("valid engine configuration");
    println!(
        "engine: {} histograms x {} bins, {} partitions, {} worker threads",
        table.rows(),
        table.dims(),
        engine.partitions(),
        engine.threads(),
    );

    // 2. Front it with a Server: a submission queue + one batching worker.
    //    Concurrent submitters hand in individual QuerySpecs; the worker
    //    drains whatever has accumulated into one engine pass.
    let server = Server::builder(engine.clone()).max_batch(32).build().expect("valid server");

    // 3. Simulate a mixed production workload from 6 concurrent client
    //    threads: navigation queries (k=10, default rule), lookups (k=1,
    //    Euclidean), and re-ranking jobs (k=50, adaptive planning).
    let queries = sample_queries(&table, 36, 99);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (client, chunk) in queries.chunks(6).enumerate() {
            let server = &server;
            let engine = &engine;
            scope.spawn(move || {
                for (i, q) in chunk.iter().enumerate() {
                    let spec = match i % 3 {
                        0 => QuerySpec::new(q.clone(), 10),
                        1 => QuerySpec::new(q.clone(), 1).rule(RuleKind::EuclideanEq),
                        _ => QuerySpec::new(q.clone(), 50).planner(PlannerKind::Adaptive),
                    };
                    let ticket = server.submit(spec.clone()).expect("spec admitted");
                    let answer = ticket.wait().expect("request served");
                    assert_eq!(answer.hits.len(), spec.k());
                    // every answer routed back to the right requester:
                    // re-ask the engine directly and compare
                    let direct = engine.search_spec(&spec).expect("direct search");
                    assert_eq!(
                        answer.hits, direct.hits,
                        "client {client} got someone else's answer"
                    );
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    // 4. The coalescing ratio: how many requests each engine pass served.
    println!(
        "\nserved {} mixed requests (k ∈ {{1, 10, 50}}, 3 rules/planners) in {elapsed:?}",
        server.queries_served(),
    );
    println!(
        "coalescing: {} engine passes for {} requests ({:.1} requests/pass)",
        server.batches_executed(),
        server.queries_served(),
        server.queries_served() as f64 / server.batches_executed().max(1) as f64,
    );
    println!("\nall answers matched direct engine searches — routing is correct");

    // 5. Shutdown is graceful: queued tickets resolve, new submissions are
    //    rejected.
    server.shutdown();
    let q = queries[0].clone();
    assert!(server.submit(QuerySpec::new(q, 1)).is_err());
    println!("after shutdown: new submissions are rejected, the queue was drained");
}
